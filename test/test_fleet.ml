(* The fleet tier: router determinism, relocation semantics, the router's
   offline floor, and the planted-bug invariant gates. *)

module Sys_ = Harness.Systems
module Server = Serving.Server
module Cluster = Fleet.Cluster
module Router = Fleet.Router
module Schedule = Faults.Schedule

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let base_config ?(jobs = 12) ?(rate = 8000.0) ~seed () =
  let base = Cluster.default_config ~seed in
  let serve = base.Cluster.serve in
  let tenants =
    List.map
      (fun t ->
        {
          t with
          Server.process = Serving.Arrivals.Open_loop { rate_per_s = rate };
          jobs;
        })
      serve.Server.tenants
  in
  {
    base with
    Cluster.n_workers = 8;
    serve = { serve with Server.tenants; check = true };
  }

let topo = Sys_.topology Sys_.Amd_milan ~cache_scale:16

(* mild faults barely dent a 128-core machine's online capacity, so the
   degradation scenarios throttle every core — heavy enough to cross the
   relocation threshold *)
let quarter_speed_everywhere ~at_us =
  List.init (Chipsim.Topology.num_cores topo) (fun core ->
      {
        Schedule.at_ns = at_us *. 1e3;
        kind = Schedule.Dvfs { core; speed = 0.2 };
      })

let all_cores_off =
  List.init (Chipsim.Topology.num_cores topo) (fun core ->
      { Schedule.at_ns = 0.0; kind = Schedule.Core_off core })

(* -- determinism -------------------------------------------------------- *)

let test_router_determinism () =
  List.iter
    (fun policy ->
      let run () =
        let cfg =
          { (base_config ~jobs:8 ~seed:7 ()) with Cluster.policy }
        in
        let res = Cluster.run cfg in
        (res.Cluster.placement_log, Cluster.result_to_json res)
      in
      let log1, json1 = run () in
      let log2, json2 = run () in
      Alcotest.(check string)
        (Router.policy_name policy ^ " placement log byte-identical")
        log1 log2;
      Alcotest.(check string)
        (Router.policy_name policy ^ " result json byte-identical")
        json1 json2)
    Router.all_policies

let test_seed_changes_placement () =
  let log seed =
    (Cluster.run (base_config ~jobs:8 ~seed ())).Cluster.placement_log
  in
  Alcotest.(check bool) "different seeds, different logs" true
    (log 7 <> log 8)

(* -- relocation --------------------------------------------------------- *)

let sum_tenants f (sr : Cluster.shard_result) =
  List.fold_left
    (fun acc (tr : Server.tenant_report) -> acc + f tr)
    0 sr.Cluster.report.Server.tenant_reports

let test_relocation_drains_degraded_only () =
  let cfg =
    {
      (base_config ~jobs:20 ~rate:12_000.0 ~seed:11 ()) with
      Cluster.faults = [ (0, quarter_speed_everywhere ~at_us:150.0) ];
    }
  in
  let res = Cluster.run cfg in
  Alcotest.(check bool) "relocations happened" true (res.Cluster.relocations > 0);
  List.iter
    (fun (sr : Cluster.shard_result) ->
      let out = sum_tenants (fun tr -> tr.Server.relocated_out) sr in
      let in_ = sum_tenants (fun tr -> tr.Server.relocated_in) sr in
      if sr.Cluster.shard = 0 then begin
        Alcotest.(check bool) "degraded shard drained" true (out > 0);
        Alcotest.(check int) "nothing relocated onto the degraded shard" 0 in_
      end
      else begin
        Alcotest.(check int)
          (Printf.sprintf "healthy shard %d not drained" sr.Cluster.shard)
          0 out;
        Alcotest.(check bool) "healthy shard absorbed the drain" true (in_ > 0)
      end)
    res.Cluster.shard_results;
  (* relocation must not lose jobs: the conservation checks already ran
     inside [Cluster.run] (serve.check), re-run them on the final result *)
  Cluster.check_result res

let test_no_relocation_flag () =
  let cfg =
    {
      (base_config ~jobs:20 ~rate:12_000.0 ~seed:11 ()) with
      Cluster.faults = [ (0, quarter_speed_everywhere ~at_us:150.0) ];
      relocation = false;
    }
  in
  let res = Cluster.run cfg in
  Alcotest.(check int) "no relocations when disabled" 0 res.Cluster.relocations

(* -- the router's offline floor ----------------------------------------- *)

let test_router_skips_offline_shard () =
  let cfg =
    {
      (base_config ~jobs:10 ~seed:5 ()) with
      Cluster.faults = [ (1, all_cores_off) ];
    }
  in
  let res = Cluster.run cfg in
  List.iter
    (fun (sr : Cluster.shard_result) ->
      if sr.Cluster.shard = 1 then
        Alcotest.(check int) "offline shard receives nothing" 0
          sr.Cluster.placed)
    res.Cluster.shard_results;
  Alcotest.(check int) "nothing shed at the router (shard 0 is up)" 0
    res.Cluster.router_shed

(* -- planted bugs: the invariants must catch them ----------------------- *)

let test_plant_drop_relocated_trips () =
  let cfg =
    {
      (base_config ~jobs:20 ~rate:12_000.0 ~seed:11 ()) with
      Cluster.faults = [ (0, quarter_speed_everywhere ~at_us:150.0) ];
      plant = Some Cluster.Drop_relocated;
    }
  in
  match Cluster.run cfg with
  | _ -> Alcotest.fail "planted drop-relocated bug was not caught"
  | exception Chipsim.Invariant.Violation msg ->
      Alcotest.(check bool)
        ("conservation message names the router: " ^ msg)
        true
        (contains msg "router")

let test_plant_route_offline_trips () =
  let cfg =
    {
      (base_config ~jobs:10 ~seed:5 ()) with
      Cluster.faults = [ (1, all_cores_off) ];
      plant = Some Cluster.Route_offline;
    }
  in
  match Cluster.run cfg with
  | _ -> Alcotest.fail "planted route-offline bug was not caught"
  | exception Chipsim.Invariant.Violation msg ->
      Alcotest.(check bool)
        ("message names the offline placement: " ^ msg)
        true
        (contains msg "fully-offline")

(* -- the EWMA policy ----------------------------------------------------- *)

let fresh_views () =
  [|
    { Router.shard = 0; capacity = 1.0; sick_fraction = 0.0; load_ns = 0.0; depth = 0 };
    { Router.shard = 1; capacity = 1.0; sick_fraction = 0.0; load_ns = 0.0; depth = 0 };
  |]

let test_ewma_observe_math () =
  let r = Router.create Router.Ewma in
  Alcotest.(check (float 0.0)) "zero before any observation" 0.0
    (Router.observed_latency r ~shard:0);
  Router.observe r ~shard:0 ~service_ns:1000.0;
  Alcotest.(check (float 1e-6)) "first sample taken raw" 1000.0
    (Router.observed_latency r ~shard:0);
  Router.observe r ~shard:0 ~service_ns:2000.0;
  Alcotest.(check (float 1e-6)) "then a 0.2 blend" 1200.0
    (Router.observed_latency r ~shard:0);
  Router.observe r ~shard:0 ~service_ns:(-5.0);
  Alcotest.(check (float 1e-6)) "negative samples ignored" 1200.0
    (Router.observed_latency r ~shard:0);
  Alcotest.(check (float 0.0)) "other shards unaffected" 0.0
    (Router.observed_latency r ~shard:1)

let test_ewma_choice () =
  let r = Router.create Router.Ewma in
  Alcotest.(check (option int)) "unobserved tie goes to the lowest shard"
    (Some 0)
    (Router.choose r ~tenant:"t" ~cost:1000.0 (fresh_views ()));
  Router.observe r ~shard:0 ~service_ns:5000.0;
  Alcotest.(check (option int)) "unobserved shard explored first" (Some 1)
    (Router.choose r ~tenant:"t" ~cost:1000.0 (fresh_views ()));
  Router.observe r ~shard:1 ~service_ns:1000.0;
  Alcotest.(check (option int)) "lower EWMA wins at equal depth" (Some 1)
    (Router.choose r ~tenant:"t" ~cost:1000.0 (fresh_views ()));
  (* a deep enough queue on the fast shard flips the choice:
     5000*(1+0) < 1000*(1+10) *)
  let v = fresh_views () in
  v.(1).Router.depth <- 10;
  Alcotest.(check (option int)) "queue depth scales the score" (Some 0)
    (Router.choose r ~tenant:"t" ~cost:1000.0 v)

let test_ewma_avoids_slow_shard () =
  (* shard 0 limps at 20% speed from t=0; the EWMA router should learn
     that from completions alone and steer more jobs to shard 1 than
     blind round-robin does, with relocation disabled so routing is the
     only mechanism in play *)
  let submitted_to_shard_0 policy =
    let cfg =
      {
        (base_config ~jobs:24 ~rate:12_000.0 ~seed:13 ()) with
        Cluster.policy;
        faults = [ (0, quarter_speed_everywhere ~at_us:0.0) ];
        relocation = false;
      }
    in
    let res = Cluster.run cfg in
    let sr =
      List.find
        (fun (sr : Cluster.shard_result) -> sr.Cluster.shard = 0)
        res.Cluster.shard_results
    in
    sum_tenants (fun tr -> tr.Server.submitted) sr
  in
  let rr = submitted_to_shard_0 Router.Round_robin in
  let ewma = submitted_to_shard_0 Router.Ewma in
  Alcotest.(check bool)
    (Printf.sprintf "ewma sends fewer jobs (%d) to the slow shard than \
                     round-robin (%d)" ewma rr)
    true (ewma < rr)

(* -- merged observability ----------------------------------------------- *)

let test_merged_registry_counters () =
  let res = Cluster.run (base_config ~jobs:8 ~seed:3 ()) in
  let reg = res.Cluster.registry in
  Alcotest.(check int) "fleet.submitted mirrors the router ledger"
    res.Cluster.router_submitted
    (Serving.Metrics.counter_value reg "fleet.submitted");
  Alcotest.(check int) "merged completions cover every arrival"
    res.Cluster.router_submitted
    (Serving.Metrics.counter_value reg "serve.completed"
    + Serving.Metrics.counter_value reg "serve.shed"
    + res.Cluster.router_shed);
  Alcotest.(check int) "fleet latency histogram counts completions"
    (Serving.Metrics.counter_value reg "serve.completed")
    (Serving.Histogram.count res.Cluster.fleet_latency)

let () =
  Alcotest.run "fleet"
    [
      ( "fleet",
        [
          Alcotest.test_case "router determinism" `Quick test_router_determinism;
          Alcotest.test_case "seed changes placement" `Quick
            test_seed_changes_placement;
          Alcotest.test_case "relocation drains degraded only" `Quick
            test_relocation_drains_degraded_only;
          Alcotest.test_case "no-relocation flag" `Quick test_no_relocation_flag;
          Alcotest.test_case "router skips offline shard" `Quick
            test_router_skips_offline_shard;
          Alcotest.test_case "planted drop-relocated trips" `Quick
            test_plant_drop_relocated_trips;
          Alcotest.test_case "planted route-offline trips" `Quick
            test_plant_route_offline_trips;
          Alcotest.test_case "ewma observe math" `Quick test_ewma_observe_math;
          Alcotest.test_case "ewma choice" `Quick test_ewma_choice;
          Alcotest.test_case "ewma avoids slow shard" `Quick
            test_ewma_avoids_slow_shard;
          Alcotest.test_case "merged registry counters" `Quick
            test_merged_registry_counters;
        ] );
    ]
