open Chipsim

let amd () = Presets.amd_milan ()

let test_geometry () =
  let t = amd () in
  Alcotest.(check int) "cores" 128 (Topology.num_cores t);
  Alcotest.(check int) "chiplets" 16 (Topology.num_chiplets t);
  Alcotest.(check int) "cores/socket" 64 (Topology.cores_per_socket t)

let test_mapping () =
  let t = amd () in
  Alcotest.(check int) "chiplet of core 0" 0 (Topology.chiplet_of_core t 0);
  Alcotest.(check int) "chiplet of core 63" 7 (Topology.chiplet_of_core t 63);
  Alcotest.(check int) "chiplet of core 64" 8 (Topology.chiplet_of_core t 64);
  Alcotest.(check int) "socket of core 63" 0 (Topology.socket_of_core t 63);
  Alcotest.(check int) "socket of core 64" 1 (Topology.socket_of_core t 64);
  Alcotest.(check int) "socket of chiplet 8" 1 (Topology.socket_of_chiplet t 8);
  Alcotest.(check (list int)) "cores of chiplet 1" [ 8; 9; 10; 11; 12; 13; 14; 15 ]
    (Topology.cores_of_chiplet t 1);
  Alcotest.(check (list int)) "chiplets of socket 1"
    [ 8; 9; 10; 11; 12; 13; 14; 15 ]
    (Topology.chiplets_of_socket t 1)

let test_predicates () =
  let t = amd () in
  Alcotest.(check bool) "same chiplet" true (Topology.same_chiplet t 0 7);
  Alcotest.(check bool) "not same chiplet" false (Topology.same_chiplet t 7 8);
  Alcotest.(check bool) "same socket" true (Topology.same_socket t 0 63);
  Alcotest.(check bool) "not same socket" false (Topology.same_socket t 63 64)

let test_validation () =
  let t = amd () in
  Alcotest.check_raises "negative core" (Invalid_argument "Topology: core -1 out of range [0,128)")
    (fun () -> Topology.validate_core t (-1));
  Alcotest.check_raises "overflow core" (Invalid_argument "Topology: core 128 out of range [0,128)")
    (fun () -> Topology.validate_core t 128);
  (try
     ignore (Topology.v ~sockets:0 ~chiplets_per_socket:1 ~cores_per_chiplet:1 ());
     Alcotest.fail "accepted zero sockets"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Topology.v ~chiplet_group_size:3 ~sockets:1 ~chiplets_per_socket:8
          ~cores_per_chiplet:8 ());
     Alcotest.fail "accepted bad group size"
   with Invalid_argument _ -> ());
  try
    ignore (Topology.v ~line_bytes:48 ~sockets:1 ~chiplets_per_socket:1 ~cores_per_chiplet:1 ());
    Alcotest.fail "accepted non-power-of-two line"
  with Invalid_argument _ -> ()

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_pp_units () =
  (* tiny's 16 KiB L3 used to integer-divide to "0 MiB" *)
  let tiny = Presets.tiny () in
  let s = Format.asprintf "%a" Topology.pp tiny in
  Alcotest.(check bool)
    (Printf.sprintf "tiny pp shows KiB (%s)" s)
    true
    (contains s "L3 16 KiB/chiplet")

let test_pp_units_mib () =
  let s = Format.asprintf "%a" Topology.pp (amd ()) in
  Alcotest.(check bool)
    (Printf.sprintf "amd pp shows MiB (%s)" s)
    true
    (contains s "L3 32 MiB/chiplet")

let hetero_tiny () =
  Topology.v ~sockets:1 ~chiplets_per_socket:4 ~cores_per_chiplet:2
    ~chiplet_group_size:2 ~l3_bytes_per_chiplet:(16 * 1024)
    ~l2_bytes_per_core:4096 ~mem_channels_per_socket:2
    ~chiplet_kinds:[| Topology.Big; Big; Little; Accel |] ()

let test_pp_hetero_suffix () =
  let s = Format.asprintf "%a" Topology.pp (hetero_tiny ()) in
  Alcotest.(check bool)
    (Printf.sprintf "hetero pp lists kinds (%s)" s)
    true
    (contains s "kinds big:2 little:1 accel:1")

let test_groups_per_socket () =
  (* quadrants never straddle a socket: chiplet 8 is socket 1's first
     chiplet and must open a fresh group *)
  let t = amd () in
  Alcotest.(check (list int)) "milan groups"
    [ 0; 0; 1; 1; 2; 2; 3; 3; 4; 4; 5; 5; 6; 6; 7; 7 ]
    (List.init 16 (Topology.group_of_chiplet t));
  let u =
    Topology.v ~sockets:2 ~chiplets_per_socket:4 ~cores_per_chiplet:2
      ~chiplet_group_size:2 ()
  in
  Alcotest.(check (list int)) "2x4 groups" [ 0; 0; 1; 1; 2; 2; 3; 3 ]
    (List.init 8 (Topology.group_of_chiplet u))

let test_hetero_accessors () =
  let t = hetero_tiny () in
  Alcotest.(check bool) "heterogeneous" true (Topology.heterogeneous t);
  Alcotest.(check bool) "homogeneous" false (Topology.heterogeneous (amd ()));
  Alcotest.(check bool) "core 0 is big" true (Topology.kind_of_core t 0 = Topology.Big);
  Alcotest.(check bool) "core 4 is little" true
    (Topology.kind_of_core t 4 = Topology.Little);
  Alcotest.(check (float 1e-9)) "big speed" 1.0 (Topology.core_speed t 0);
  Alcotest.(check (float 1e-9)) "little speed" 0.6 (Topology.core_speed t 4);
  (* 4 big cores at 1.0, 2 little at 0.6, 2 accel capped at 1.0 *)
  Alcotest.(check (float 1e-9)) "relative capacity"
    ((4.0 +. 1.2 +. 2.0) /. 8.0)
    (Topology.relative_capacity t);
  Alcotest.(check (float 1e-9)) "homogeneous capacity" 1.0
    (Topology.relative_capacity (amd ()))

let test_hetero_validation () =
  (* wrong-length kinds array *)
  (try
     ignore
       (Topology.v ~sockets:1 ~chiplets_per_socket:2 ~cores_per_chiplet:2
          ~chiplet_group_size:1 ~chiplet_kinds:[| Topology.Big |] ());
     Alcotest.fail "accepted short chiplet_kinds"
   with Invalid_argument _ -> ());
  (* wrong-length links array *)
  (try
     ignore
       (Topology.v ~sockets:1 ~chiplets_per_socket:2 ~cores_per_chiplet:2
          ~chiplet_group_size:1 ~links:[| Topology.default_link |] ());
     Alcotest.fail "accepted short links"
   with Invalid_argument _ -> ());
  (* non-positive speed *)
  (try
     let specs = Array.copy Topology.default_kind_specs in
     specs.(1) <- { specs.(1) with Topology.speed = 0.0 };
     ignore
       (Topology.v ~sockets:1 ~chiplets_per_socket:2 ~cores_per_chiplet:2
          ~chiplet_group_size:1 ~kind_specs:specs ());
     Alcotest.fail "accepted zero speed"
   with Invalid_argument _ -> ());
  (* non-finite link multiplier *)
  try
    ignore
      (Topology.v ~sockets:1 ~chiplets_per_socket:2 ~cores_per_chiplet:2
         ~chiplet_group_size:1
         ~links:[| { Topology.lat_mult = Float.nan; bw_bytes_per_ns = 4.0 };
                   Topology.default_link |] ());
    Alcotest.fail "accepted NaN lat_mult"
  with Invalid_argument _ -> ()

let test_scale_floors () =
  (* the old flat 4096 B floor bottomed L2 out at the same size for any
     scale >= 128; per-cache line floors keep the hierarchy sane *)
  let t = Presets.amd_milan ~scale:256 () in
  Alcotest.(check int) "L2 at scale 256" 2048 t.Topology.l2_bytes_per_core;
  Alcotest.(check int) "L3 at scale 256" (128 * 1024) t.Topology.l3_bytes_per_chiplet;
  let huge = Presets.scale_topology (Presets.amd_milan ()) ~scale:1_000_000 in
  Alcotest.(check int) "L2 floor" (16 * 64) huge.Topology.l2_bytes_per_core;
  Alcotest.(check int) "L3 floor" (64 * 64) huge.Topology.l3_bytes_per_chiplet;
  Alcotest.(check bool) "hierarchy preserved" true
    (huge.Topology.l2_bytes_per_core < huge.Topology.l3_bytes_per_chiplet);
  (try
     ignore (Presets.scale_topology (amd ()) ~scale:0);
     Alcotest.fail "accepted scale 0"
   with Invalid_argument _ -> ());
  (* a small-L3 / big-L2 base inverts under scaling and must be rejected *)
  let inverted_base =
    Topology.v ~sockets:1 ~chiplets_per_socket:2 ~cores_per_chiplet:2
      ~chiplet_group_size:1 ~l3_bytes_per_chiplet:(16 * 1024)
      ~l2_bytes_per_core:(512 * 1024) ()
  in
  try
    ignore (Presets.scale_topology inverted_base ~scale:4);
    Alcotest.fail "accepted inverted hierarchy"
  with Invalid_argument _ -> ()

let test_scale_preserves_hetero () =
  let t = Presets.scale_topology (hetero_tiny ()) ~scale:2 in
  Alcotest.(check bool) "kinds survive scaling" true (Topology.heterogeneous t);
  Alcotest.(check bool) "kinds equal" true
    (t.Topology.chiplet_kinds = (hetero_tiny ()).Topology.chiplet_kinds)

let prop_core_roundtrip =
  QCheck.Test.make ~name:"core <-> chiplet mapping is consistent" ~count:200
    QCheck.(pair (int_range 0 127) unit)
    (fun (core, ()) ->
      let t = amd () in
      let chiplet = Topology.chiplet_of_core t core in
      List.mem core (Topology.cores_of_chiplet t chiplet))

let prop_first_core =
  QCheck.Test.make ~name:"first core of chiplet lies on it" ~count:100
    QCheck.(int_range 0 15)
    (fun chiplet ->
      let t = amd () in
      Topology.chiplet_of_core t (Topology.first_core_of_chiplet t chiplet) = chiplet)

let suite =
  [
    Alcotest.test_case "geometry" `Quick test_geometry;
    Alcotest.test_case "mapping" `Quick test_mapping;
    Alcotest.test_case "predicates" `Quick test_predicates;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "pp prints KiB below 1 MiB" `Quick test_pp_units;
    Alcotest.test_case "pp prints MiB" `Quick test_pp_units_mib;
    Alcotest.test_case "pp lists kinds when heterogeneous" `Quick
      test_pp_hetero_suffix;
    Alcotest.test_case "groups computed per socket" `Quick
      test_groups_per_socket;
    Alcotest.test_case "heterogeneity accessors" `Quick test_hetero_accessors;
    Alcotest.test_case "heterogeneity validation" `Quick
      test_hetero_validation;
    Alcotest.test_case "cache scaling floors per cache" `Quick
      test_scale_floors;
    Alcotest.test_case "cache scaling keeps kinds" `Quick
      test_scale_preserves_hetero;
    QCheck_alcotest.to_alcotest prop_core_roundtrip;
    QCheck_alcotest.to_alcotest prop_first_core;
  ]
