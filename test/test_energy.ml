(* Energy accounting and the power-cap controller: per-kind golden
   values, DVFS quadratics, separation of the compute meter from the
   memory meter (the PR-8 baseline guarantee), windowed power estimates,
   shed/release hysteresis, and end-to-end wiring through the CHARM
   runtime. *)

module Topology = Chipsim.Topology
module Machine = Chipsim.Machine
module Modifiers = Chipsim.Modifiers
module Power_cap = Charm.Power_cap
module Server = Serving.Server
module Sys_ = Harness.Systems

(* 1 socket x 4 chiplets x 2 cores, mirroring examples/topologies/
   tiny-hetero.topo: chiplet 0-1 Big, 2 Little, 3 Accel *)
let hetero () =
  Machine.create
    (Topology.v
       ~chiplet_kinds:[| Topology.Big; Topology.Big; Topology.Little; Topology.Accel |]
       ~sockets:1 ~chiplets_per_socket:4 ~cores_per_chiplet:2 ())

(* compute power densities in pJ/ns at nominal DVFS: spec.energy_pj x
   spec.speed (Big 0.87 x 1.0, Little 0.30 x 0.6, Accel 0.22 x 2.5) *)
let big_pw = 0.87
let little_pw = 0.18
let accel_pw = 0.55

(* -- per-quantum compute energy ---------------------------------------- *)

let test_charge_golden () =
  let m = hetero () in
  Machine.charge_quantum m ~core:0 ~dt_ns:100.0 ~dvfs:1.0;
  Machine.charge_quantum m ~core:4 ~dt_ns:100.0 ~dvfs:1.0;
  Machine.charge_quantum m ~core:6 ~dt_ns:100.0 ~dvfs:1.0;
  Alcotest.(check (float 1e-9)) "Big: 100 ns at nominal = 87 pJ"
    (100.0 *. big_pw)
    (Machine.compute_energy_pj m ~core:0);
  Alcotest.(check (float 1e-9)) "Little: 100 ns = 18 pJ" (100.0 *. little_pw)
    (Machine.compute_energy_pj m ~core:4);
  Alcotest.(check (float 1e-9)) "Accel: 100 ns = 55 pJ" (100.0 *. accel_pw)
    (Machine.compute_energy_pj m ~core:6);
  Alcotest.(check (float 1e-9)) "uncharged core stays 0" 0.0
    (Machine.compute_energy_pj m ~core:1);
  Alcotest.(check (float 1e-9)) "total = sum of cores"
    (100.0 *. (big_pw +. little_pw +. accel_pw))
    (Machine.total_compute_energy_pj m)

let test_dvfs_quadratic () =
  let m = hetero () in
  Machine.charge_quantum m ~core:0 ~dt_ns:100.0 ~dvfs:0.5;
  Alcotest.(check (float 1e-9)) "half frequency = quarter energy"
    (100.0 *. big_pw *. 0.25)
    (Machine.compute_energy_pj m ~core:0);
  Machine.charge_quantum m ~core:0 ~dt_ns:100.0 ~dvfs:0.5;
  Alcotest.(check (float 1e-9)) "charges accumulate"
    (2.0 *. 100.0 *. big_pw *. 0.25)
    (Machine.compute_energy_pj m ~core:0);
  let m2 = hetero () in
  Machine.charge_quantum m2 ~core:0 ~dt_ns:50.0 ~dvfs:2.0;
  Alcotest.(check (float 1e-9)) "overdrive scales by dvfs^2"
    (50.0 *. big_pw *. 4.0)
    (Machine.compute_energy_pj m2 ~core:0)

let test_compute_meter_separate () =
  (* the PR-8 compatibility contract: charge_quantum must never move
     total_energy_pj (memory-only), and memory accesses must never move
     the compute meter, so every pre-energy baseline stays bit-identical
     with --energy off *)
  let m = hetero () in
  let r = Machine.alloc m ~elt_bytes:8 ~count:256 () in
  ignore (Machine.touch_range m ~core:0 ~now_ns:0.0 ~write:false r ~lo:0 ~hi:256);
  let mem_before = Machine.total_energy_pj m in
  Alcotest.(check bool) "accesses metered memory energy" true (mem_before > 0.0);
  Alcotest.(check (float 0.0)) "accesses leave the compute meter at 0" 0.0
    (Machine.total_compute_energy_pj m);
  Machine.charge_quantum m ~core:0 ~dt_ns:1000.0 ~dvfs:1.0;
  Alcotest.(check (float 0.0)) "charge_quantum leaves the memory meter alone"
    mem_before (Machine.total_energy_pj m);
  Alcotest.(check (float 1e-9)) "combined = memory + compute"
    (mem_before +. (1000.0 *. big_pw))
    (Machine.combined_energy_pj m)

let test_chiplet_sums () =
  let m = hetero () in
  let r = Machine.alloc m ~elt_bytes:8 ~count:512 () in
  for core = 0 to 7 do
    ignore (Machine.touch m ~core ~now_ns:0.0 ~write:(core mod 2 = 0) r core);
    Machine.charge_quantum m ~core ~dt_ns:(float_of_int ((core + 1) * 10)) ~dvfs:0.9
  done;
  let per_chiplet = ref 0.0 in
  for chiplet = 0 to 3 do
    per_chiplet := !per_chiplet +. Machine.chiplet_energy_pj m ~chiplet
  done;
  Alcotest.(check (float 1e-6)) "chiplet meters sum to the combined meter"
    (Machine.combined_energy_pj m) !per_chiplet;
  (* the executable energy-conservation invariant over the same state *)
  Machine.check_invariants_full m

let test_reset_zeroes () =
  let m = hetero () in
  Machine.charge_quantum m ~core:3 ~dt_ns:500.0 ~dvfs:1.0;
  Machine.reset m;
  Alcotest.(check (float 0.0)) "reset clears compute energy" 0.0
    (Machine.total_compute_energy_pj m);
  Alcotest.(check (float 0.0)) "reset clears combined energy" 0.0
    (Machine.combined_energy_pj m)

(* -- gating through the scheduler -------------------------------------- *)

let small_serve_cfg seed =
  let base = Server.default_config ~seed in
  {
    base with
    Server.tenants =
      List.map
        (fun t -> { t with Server.jobs = 8 })
        base.Server.tenants;
  }

let run_serve ~energy seed =
  let inst = Sys_.make ~cache_scale:16 Sys_.Charm Sys_.Amd_milan_1s ~n_workers:8 () in
  let sched = inst.Sys_.env.Workloads.Exec_env.sched in
  Engine.Sched.set_energy sched energy;
  let r = Server.run inst (small_serve_cfg seed) in
  (r, Machine.total_compute_energy_pj inst.Sys_.machine)

let test_energy_off_is_free () =
  (* with energy off (the default) the compute meter must stay at zero
     and the schedule must be exactly the one an energy-on run produces:
     metering is observation, never perturbation *)
  let r_off, compute_off = run_serve ~energy:false 11 in
  let r_on, compute_on = run_serve ~energy:true 11 in
  Alcotest.(check (float 0.0)) "energy off: compute meter untouched" 0.0
    compute_off;
  Alcotest.(check bool) "energy on: compute meter accrues" true
    (compute_on > 0.0);
  Alcotest.(check (float 0.0)) "identical makespan" r_off.Server.makespan_ns
    r_on.Server.makespan_ns;
  List.iter2
    (fun a b ->
      Alcotest.(check int) "identical completions" a.Server.completed
        b.Server.completed;
      Alcotest.(check (float 0.0)) "identical latency mass"
        (Serving.Histogram.sum a.Server.latency)
        (Serving.Histogram.sum b.Server.latency))
    r_off.Server.tenant_reports r_on.Server.tenant_reports

let test_energy_totals_deterministic () =
  let _, a = run_serve ~energy:true 21 in
  let _, b = run_serve ~energy:true 21 in
  Alcotest.(check (float 0.0)) "same seed, bit-identical energy total" a b

(* -- power-cap controller ---------------------------------------------- *)

let invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: accepted a nonsensical argument" name

let test_cap_validation () =
  let m = hetero () in
  invalid "zero cap" (fun () -> Power_cap.create m ~cap_mw:0.0);
  invalid "negative cap" (fun () -> Power_cap.create m ~cap_mw:(-1.0));
  invalid "nan cap" (fun () -> Power_cap.create m ~cap_mw:Float.nan);
  invalid "zero window" (fun () ->
      Power_cap.create ~window_ns:0.0 m ~cap_mw:1.0);
  invalid "zero cadence" (fun () ->
      Power_cap.create ~sample_ns:0.0 m ~cap_mw:1.0);
  invalid "config negative weight" (fun () ->
      Charm.Config.validate
        { Charm.Config.default with energy_weight = -1.0 }
        (Machine.topology m));
  invalid "config nan cap" (fun () ->
      Charm.Config.validate
        { Charm.Config.default with power_cap_mw = Float.nan }
        (Machine.topology m))

let test_power_estimate_golden () =
  let m = hetero () in
  (* huge cap: pure estimation, no actuation *)
  let pc = Power_cap.create ~window_ns:1000.0 ~sample_ns:100.0 m ~cap_mw:1e9 in
  Alcotest.(check (float 0.0)) "no samples yet: 0 mW" 0.0 (Power_cap.power_mw pc);
  ignore (Power_cap.tick pc ~now_ns:0.0);
  Alcotest.(check (float 0.0)) "one sample: still 0 mW" 0.0
    (Power_cap.power_mw pc);
  Machine.charge_quantum m ~core:0 ~dt_ns:100.0 ~dvfs:1.0;
  ignore (Power_cap.tick pc ~now_ns:100.0);
  (* 87 pJ over 100 ns = 0.87 pJ/ns = 0.87 mW, all on chiplet 0 *)
  Alcotest.(check (float 1e-9)) "chiplet 0 draws 0.87 mW" 0.87
    (Power_cap.chiplet_power_mw pc ~chiplet:0);
  Alcotest.(check (float 1e-9)) "idle chiplet draws 0 mW" 0.0
    (Power_cap.chiplet_power_mw pc ~chiplet:1);
  Alcotest.(check (float 1e-9)) "machine power sums the chiplets" 0.87
    (Power_cap.power_mw pc);
  Alcotest.(check (float 1e-9)) "peak recorded" 0.87
    (Power_cap.max_power_mw pc);
  (* sub-cadence tick: no new sample, estimate unchanged *)
  ignore (Power_cap.tick pc ~now_ns:150.0);
  Alcotest.(check (float 1e-9)) "sub-cadence tick holds the estimate" 0.87
    (Power_cap.power_mw pc);
  Power_cap.verify pc

let test_cap_sheds_hottest () =
  let m = hetero () in
  let pc = Power_cap.create ~window_ns:200.0 ~sample_ns:100.0 m ~cap_mw:1.0 in
  ignore (Power_cap.tick pc ~now_ns:0.0);
  (* chiplet 0 draws 1.5 mW, chiplet 2 a modest 0.2 mW *)
  Machine.charge_quantum m ~core:0 ~dt_ns:(150.0 /. big_pw) ~dvfs:1.0;
  Machine.charge_quantum m ~core:4 ~dt_ns:(20.0 /. little_pw) ~dvfs:1.0;
  (match Power_cap.tick pc ~now_ns:100.0 with
  | Power_cap.Shed 0 -> ()
  | Power_cap.Shed ch -> Alcotest.failf "shed chiplet %d, not the hottest" ch
  | Power_cap.Idle | Power_cap.Release _ ->
      Alcotest.fail "over-cap tick did not shed");
  Alcotest.(check int) "one shed recorded" 1 (Power_cap.sheds pc);
  Alcotest.(check (float 1e-9)) "level dropped one step" 0.75
    (Power_cap.level pc ~chiplet:0);
  Alcotest.(check bool) "chiplet reported throttled" true
    (Power_cap.throttled pc ~chiplet:0);
  (* the actuator is the DVFS knob the fault layer owns: both cores of
     the shed chiplet slow down, neighbours keep nominal speed *)
  let mods = Machine.modifiers m in
  Alcotest.(check (float 1e-9)) "core 0 throttled" 0.75
    (Modifiers.core_speed mods 0);
  Alcotest.(check (float 1e-9)) "core 1 throttled" 0.75
    (Modifiers.core_speed mods 1);
  Alcotest.(check (float 1e-9)) "core 2 untouched" 1.0
    (Modifiers.core_speed mods 2);
  Power_cap.verify pc

let test_cap_hysteresis_no_flapping () =
  let m = hetero () in
  let pc = Power_cap.create ~window_ns:200.0 ~sample_ns:100.0 m ~cap_mw:1.0 in
  let now = ref 0.0 in
  let step rate_mw =
    (* inject [rate_mw] worth of energy on chiplet 0 over one cadence;
       manual charges keep the plant under test control regardless of
       the controller's own DVFS actuation *)
    Machine.charge_quantum m ~core:0 ~dt_ns:(rate_mw *. 100.0 /. big_pw)
      ~dvfs:1.0;
    now := !now +. 100.0;
    Power_cap.tick pc ~now_ns:!now
  in
  ignore (Power_cap.tick pc ~now_ns:0.0);
  (* drive power over the cap until the controller reacts *)
  let guard = ref 0 in
  while Power_cap.sheds pc = 0 && !guard < 10 do
    ignore (step 1.5);
    incr guard
  done;
  Alcotest.(check bool) "over-cap load triggers a shed" true
    (Power_cap.sheds pc > 0);
  (* settle into the dead band (80%..100% of cap) and let the sliding
     window flush the over-cap transient *)
  for _ = 1 to 5 do
    ignore (step 0.9)
  done;
  let sheds0 = Power_cap.sheds pc and releases0 = Power_cap.releases pc in
  (* hysteresis: a steady dead-band load must hold the actuator still *)
  for _ = 1 to 10 do
    match step 0.9 with
    | Power_cap.Idle -> ()
    | Power_cap.Shed _ | Power_cap.Release _ ->
        Alcotest.fail "actuator flapped inside the dead band"
  done;
  Alcotest.(check int) "no sheds inside the dead band" sheds0
    (Power_cap.sheds pc);
  Alcotest.(check int) "no releases inside the dead band" releases0
    (Power_cap.releases pc);
  (* quiesce: power falls under 80% of cap, levels release back to 1 *)
  let guard = ref 0 in
  while Power_cap.throttled pc ~chiplet:0 && !guard < 20 do
    ignore (step 0.0);
    incr guard
  done;
  Alcotest.(check bool) "released after sustained low power" true
    (Power_cap.releases pc > 0);
  Alcotest.(check (float 1e-9)) "level restored to nominal" 1.0
    (Power_cap.level pc ~chiplet:0);
  Alcotest.(check (float 1e-9)) "cores back to full speed" 1.0
    (Modifiers.core_speed (Machine.modifiers m) 0);
  Power_cap.verify pc

let test_cap_floor () =
  let m = hetero () in
  let pc = Power_cap.create ~window_ns:200.0 ~sample_ns:100.0 m ~cap_mw:0.01 in
  let now = ref 0.0 in
  (* hopeless overload: every chiplet pinned far over a tiny cap *)
  for _ = 1 to 30 do
    for chiplet = 0 to 3 do
      Machine.charge_quantum m ~core:(chiplet * 2) ~dt_ns:1000.0 ~dvfs:1.0
    done;
    now := !now +. 100.0;
    ignore (Power_cap.tick pc ~now_ns:!now)
  done;
  for chiplet = 0 to 3 do
    let l = Power_cap.level pc ~chiplet in
    Alcotest.(check bool)
      (Printf.sprintf "chiplet %d level %g respects the floor" chiplet l)
      true
      (l >= 0.3 -. 1e-9 && l < 1.0)
  done;
  (* every chiplet at the floor: over-cap ticks with no headroom are not
     control-law violations *)
  Power_cap.verify pc

let test_cap_nonmonotonic_ticks () =
  let m = hetero () in
  let pc = Power_cap.create ~window_ns:200.0 ~sample_ns:100.0 m ~cap_mw:1e9 in
  ignore (Power_cap.tick pc ~now_ns:0.0);
  Machine.charge_quantum m ~core:0 ~dt_ns:100.0 ~dvfs:1.0;
  ignore (Power_cap.tick pc ~now_ns:200.0);
  let p = Power_cap.power_mw pc in
  (* stale worker clocks must not rewind the controller's timeline *)
  ignore (Power_cap.tick pc ~now_ns:50.0);
  Alcotest.(check (float 0.0)) "older tick is a no-op" p
    (Power_cap.power_mw pc);
  Power_cap.verify pc

let test_runtime_cap_wiring () =
  (* end to end: a Systems instance built with a tiny power cap must
     actually shed while serving, and the controller's invariants must
     hold at the end of the run *)
  let inst =
    Sys_.make ~cache_scale:16
      ~charm_config:{ Charm.Config.default with power_cap_mw = 0.05 }
      Sys_.Charm Sys_.Amd_milan_1s ~n_workers:8 ()
  in
  Engine.Sched.set_energy inst.Sys_.env.Workloads.Exec_env.sched true;
  let r = Server.run inst (small_serve_cfg 7) in
  Alcotest.(check bool) "run completes" true (r.Server.makespan_ns > 0.0);
  match inst.Sys_.charm with
  | None -> Alcotest.fail "CHARM instance lost its runtime"
  | Some rt -> (
      match Charm.Runtime.power_cap rt with
      | None -> Alcotest.fail "power_cap_mw > 0 but no controller attached"
      | Some pc ->
          Alcotest.(check bool) "tiny cap forced sheds" true
            (Power_cap.sheds pc > 0);
          Alcotest.(check bool) "peak power above the cap was observed" true
            (Power_cap.max_power_mw pc > Power_cap.cap_mw pc);
          Power_cap.verify pc)

let suite =
  [
    Alcotest.test_case "per-kind golden energies" `Quick test_charge_golden;
    Alcotest.test_case "dvfs quadratic scaling" `Quick test_dvfs_quadratic;
    Alcotest.test_case "compute meter separate from memory meter" `Quick
      test_compute_meter_separate;
    Alcotest.test_case "chiplet meters sum to combined" `Quick
      test_chiplet_sums;
    Alcotest.test_case "reset zeroes energy" `Quick test_reset_zeroes;
    Alcotest.test_case "energy off is free and identical" `Quick
      test_energy_off_is_free;
    Alcotest.test_case "energy totals deterministic" `Quick
      test_energy_totals_deterministic;
    Alcotest.test_case "cap and config validation" `Quick test_cap_validation;
    Alcotest.test_case "windowed power golden value" `Quick
      test_power_estimate_golden;
    Alcotest.test_case "shed targets the hottest chiplet" `Quick
      test_cap_sheds_hottest;
    Alcotest.test_case "dead-band hysteresis, no flapping" `Quick
      test_cap_hysteresis_no_flapping;
    Alcotest.test_case "levels respect the floor" `Quick test_cap_floor;
    Alcotest.test_case "non-monotonic ticks" `Quick test_cap_nonmonotonic_ticks;
    Alcotest.test_case "runtime cap wiring end to end" `Quick
      test_runtime_cap_wiring;
  ]
