open Chipsim

let machine () = Machine.create (Presets.amd_milan ())

let test_dram_then_l3 () =
  let m = machine () in
  let r = Machine.alloc m ~elt_bytes:8 ~count:8 () in
  let c1 = Machine.touch m ~core:0 ~now_ns:0.0 ~write:false r 0 in
  (* first touch: local DRAM *)
  Alcotest.(check bool) "dram cost" true (c1 >= 110.0);
  Alcotest.(check int) "dram local counted" 1 (Pmu.read (Machine.pmu m) ~core:0 Pmu.Dram_local);
  (* L2 now holds it *)
  let c2 = Machine.touch m ~core:0 ~now_ns:200.0 ~write:false r 0 in
  Alcotest.(check bool) "l2 hit cheap" true (c2 < 15.0);
  (* another core on the same chiplet misses L2, hits the shared L3 *)
  let c3 = Machine.touch m ~core:1 ~now_ns:400.0 ~write:false r 0 in
  Alcotest.(check bool) "l3 local" true (c3 >= 20.0 && c3 < 40.0);
  Alcotest.(check int) "l3 hit counted" 1 (Pmu.read (Machine.pmu m) ~core:1 Pmu.L3_local_hit)

let test_remote_chiplet_fill () =
  let m = machine () in
  let r = Machine.alloc m ~elt_bytes:8 ~count:8 () in
  ignore (Machine.touch m ~core:0 ~now_ns:0.0 ~write:false r 0);
  (* core 8 is chiplet 1, same group: cache-to-cache fill *)
  let c = Machine.touch m ~core:8 ~now_ns:100.0 ~write:false r 0 in
  Alcotest.(check bool) "group-fill cost" true (c >= 80.0 && c <= 100.0);
  Alcotest.(check int) "remote chiplet fill" 1
    (Pmu.read (Machine.pmu m) ~core:8 Pmu.Fill_remote_chiplet)

let test_remote_numa_fill () =
  let m = machine () in
  let r = Machine.alloc m ~elt_bytes:8 ~count:8 () in
  ignore (Machine.touch m ~core:0 ~now_ns:0.0 ~write:false r 0);
  let c = Machine.touch m ~core:64 ~now_ns:100.0 ~write:false r 0 in
  Alcotest.(check bool) "cross-socket cost" true (c >= 200.0);
  Alcotest.(check int) "remote numa fill" 1
    (Pmu.read (Machine.pmu m) ~core:64 Pmu.Fill_remote_numa)

let test_write_invalidation () =
  let m = machine () in
  let r = Machine.alloc m ~elt_bytes:8 ~count:8 () in
  ignore (Machine.touch m ~core:0 ~now_ns:0.0 ~write:false r 0);
  ignore (Machine.touch m ~core:8 ~now_ns:100.0 ~write:false r 0);
  (* a write from chiplet 2 invalidates both copies *)
  ignore (Machine.touch m ~core:16 ~now_ns:200.0 ~write:true r 0);
  Alcotest.(check int) "two invalidations" 2
    (Pmu.read (Machine.pmu m) ~core:16 Pmu.Coherence_invalidation);
  (* chiplet 0 must now re-fetch from chiplet 2 *)
  let c = Machine.touch m ~core:2 ~now_ns:300.0 ~write:false r 0 in
  Alcotest.(check bool) "refetch is a fill" true (c >= 80.0)

let test_remote_dram () =
  let m = machine () in
  let r = Machine.alloc m ~policy:(Simmem.Bind 1) ~elt_bytes:8 ~count:8 () in
  let c = Machine.touch m ~core:0 ~now_ns:0.0 ~write:false r 0 in
  Alcotest.(check bool) "remote dram cost" true (c >= 190.0);
  Alcotest.(check int) "remote dram counted" 1
    (Pmu.read (Machine.pmu m) ~core:0 Pmu.Dram_remote)

let test_touch_range_lines () =
  let m = machine () in
  (* 64 elements of 8B = 8 cache lines *)
  let r = Machine.alloc m ~elt_bytes:8 ~count:64 () in
  ignore (Machine.touch_range m ~core:0 ~now_ns:0.0 ~write:false r ~lo:0 ~hi:64);
  Alcotest.(check int) "8 dram line fills" 8
    (Pmu.read (Machine.pmu m) ~core:0 Pmu.Dram_local)

let test_flush () =
  let m = machine () in
  let r = Machine.alloc m ~elt_bytes:8 ~count:8 () in
  ignore (Machine.touch m ~core:0 ~now_ns:0.0 ~write:false r 0);
  Machine.flush_caches m;
  let c = Machine.touch m ~core:0 ~now_ns:100.0 ~write:false r 0 in
  Alcotest.(check bool) "cold again" true (c >= 110.0)


let test_prefetch_discount () =
  let m = machine () in
  (* 512 elements x 8B = 64 lines, all cold DRAM *)
  let r1 = Machine.alloc m ~elt_bytes:8 ~count:512 () in
  let r2 = Machine.alloc m ~elt_bytes:8 ~count:512 () in
  let seq = Machine.touch_range m ~core:0 ~now_ns:0.0 ~write:false r1 ~lo:0 ~hi:512 in
  let random = ref 0.0 in
  (* one element per cache line, touched individually *)
  for i = 0 to 63 do
    random := !random +. Machine.touch m ~core:0 ~now_ns:!random ~write:false r2 (i * 8)
  done;
  Alcotest.(check bool) "streaming is much cheaper than pointer chasing" true
    (seq < 0.6 *. !random)

let test_link_saturation () =
  (* 8 cores of one chiplet streaming together must see higher latency
     than a lone streamer (GMI link queueing) *)
  let solo =
    let m = machine () in
    let r = Machine.alloc m ~elt_bytes:8 ~count:(1 lsl 16) () in
    Machine.touch_range m ~core:0 ~now_ns:0.0 ~write:false r ~lo:0 ~hi:(1 lsl 16)
  in
  let crowded =
    let m = machine () in
    let regions = Array.init 8 (fun _ -> Machine.alloc m ~elt_bytes:8 ~count:(1 lsl 16) ()) in
    (* interleave the 8 cores' streams in time so they share bins *)
    let clocks = Array.make 8 0.0 in
    let chunk = 512 in
    for step = 0 to ((1 lsl 16) / chunk) - 1 do
      for core = 0 to 7 do
        let lo = step * chunk in
        clocks.(core) <-
          clocks.(core)
          +. Machine.touch_range m ~core ~now_ns:clocks.(core) ~write:false
               regions.(core) ~lo ~hi:(lo + chunk)
      done
    done;
    clocks.(0)
  in
  Alcotest.(check bool) "contended stream slower" true (crowded > 1.2 *. solo)

(* heterogeneous kinds: a little core's accesses cost access_mult more
   than a big core's identical access, every access charges its kind's
   energy, and an all-big machine is bit-identical to the historical
   model *)
let test_kind_costs () =
  let hetero =
    Topology.v ~sockets:1 ~chiplets_per_socket:2 ~cores_per_chiplet:2
      ~chiplet_group_size:1 ~l3_bytes_per_chiplet:(16 * 1024)
      ~l2_bytes_per_core:4096 ~mem_channels_per_socket:2
      ~chiplet_kinds:[| Topology.Big; Topology.Little |] ()
  in
  let m = Machine.create hetero in
  let r = Machine.alloc m ~elt_bytes:8 ~count:64 () in
  (* identical cold DRAM access from a big core (0) and a little core
     (2), on disjoint lines so neither warms the other's path *)
  let big = Machine.touch m ~core:0 ~now_ns:0.0 ~write:false r 0 in
  let little = Machine.touch m ~core:2 ~now_ns:0.0 ~write:false r 32 in
  let mult = (Topology.spec_of_kind hetero Topology.Little).Topology.access_mult in
  Alcotest.(check (float 1e-6)) "little pays access-mult" (big *. mult) little;
  let e_big = (Topology.spec_of_kind hetero Topology.Big).Topology.energy_pj in
  let e_little = (Topology.spec_of_kind hetero Topology.Little).Topology.energy_pj in
  Alcotest.(check (float 1e-9)) "big energy" e_big (Machine.energy_pj m ~core:0);
  Alcotest.(check (float 1e-9)) "little energy" e_little
    (Machine.energy_pj m ~core:2);
  Alcotest.(check (float 1e-9)) "total energy" (e_big +. e_little)
    (Machine.total_energy_pj m)

let test_homogeneous_bit_identical () =
  (* the default kind table must not perturb a homogeneous machine *)
  let a = machine () and b = machine () in
  let ra = Machine.alloc a ~elt_bytes:8 ~count:256 () in
  let rb = Machine.alloc b ~elt_bytes:8 ~count:256 () in
  for i = 0 to 255 do
    let ca = Machine.touch a ~core:(i mod 16) ~now_ns:(float_of_int i) ~write:(i mod 3 = 0) ra i in
    let cb = Machine.touch b ~core:(i mod 16) ~now_ns:(float_of_int i) ~write:(i mod 3 = 0) rb i in
    if ca <> cb then Alcotest.failf "access %d diverged: %f vs %f" i ca cb
  done

let suite =
  [
    Alcotest.test_case "dram then cache hits" `Quick test_dram_then_l3;
    Alcotest.test_case "kind access and energy costs" `Quick test_kind_costs;
    Alcotest.test_case "homogeneous runs unperturbed" `Quick
      test_homogeneous_bit_identical;
    Alcotest.test_case "prefetch discount" `Quick test_prefetch_discount;
    Alcotest.test_case "link saturation" `Quick test_link_saturation;
    Alcotest.test_case "remote chiplet fill" `Quick test_remote_chiplet_fill;
    Alcotest.test_case "remote numa fill" `Quick test_remote_numa_fill;
    Alcotest.test_case "write invalidation" `Quick test_write_invalidation;
    Alcotest.test_case "remote dram" `Quick test_remote_dram;
    Alcotest.test_case "touch_range per line" `Quick test_touch_range_lines;
    Alcotest.test_case "flush" `Quick test_flush;
  ]
