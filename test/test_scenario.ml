(* The scenario fuzzer itself: deterministic generation, clean smoke
   seeds, shrinking behaviour and repro rendering. *)

module Scenario = Check.Scenario
module Fuzz = Check.Fuzz

let test_generation_deterministic () =
  for seed = 0 to 20 do
    let a = Scenario.generate ~mode:Scenario.Smoke ~seed in
    let b = Scenario.generate ~mode:Scenario.Smoke ~seed in
    if a <> b then Alcotest.failf "seed %d generated two different scenarios" seed
  done

let test_smoke_seeds_clean () =
  match Fuzz.run ~mode:Scenario.Smoke ~start_seed:0 ~seeds:4 () with
  | Fuzz.Clean { scenarios } -> Alcotest.(check int) "scenarios" 4 scenarios
  | Fuzz.Failed { repro; _ } -> Alcotest.failf "unexpected failure:\n%s" repro

let scenario_with_faults () =
  (* walk seeds until generation yields a faulty scenario *)
  let rec go seed =
    let t = Scenario.generate ~mode:Scenario.Smoke ~seed in
    if t.Scenario.faults <> [] then t else go (seed + 1)
  in
  go 0

let test_shrink_candidates () =
  let t = scenario_with_faults () in
  let cands = Scenario.shrink t in
  Alcotest.(check bool) "has candidates" true (cands <> []);
  List.iter
    (fun c -> if c = t then Alcotest.fail "shrink proposed the scenario itself")
    cands;
  (match cands with
  | first :: _ ->
      Alcotest.(check int) "first candidate drops the fault schedule" 0
        (List.length first.Scenario.faults)
  | [] -> ());
  (* shrinking terminates: repeatedly taking the first candidate reaches a
     fixpoint *)
  let rec descend t steps =
    if steps > 200 then Alcotest.fail "shrink does not terminate"
    else match Scenario.shrink t with [] -> steps | c :: _ -> descend c (steps + 1)
  in
  ignore (descend t 0 : int)

let test_repro_rendering () =
  let seen_batch = ref false and seen_serve = ref false and seen_fleet = ref false in
  for seed = 0 to 60 do
    let t = Scenario.generate ~mode:Scenario.Smoke ~seed in
    let repro = Scenario.to_repro t in
    let has frag =
      let n = String.length repro and m = String.length frag in
      let rec go i = i + m <= n && (String.sub repro i m = frag || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "repro carries --check" true (has "--check");
    Alcotest.(check bool) "repro carries the seed" true
      (has (Printf.sprintf "--seed %d" t.Scenario.seed));
    (if t.Scenario.faults <> [] then
       Alcotest.(check bool) "faulty repro carries --faults" true (has "--faults"));
    match t.Scenario.kind with
    | Scenario.Batch _ ->
        seen_batch := true;
        Alcotest.(check bool) "batch repro uses charm_run" true (has "charm_run")
    | Scenario.Serve _ ->
        seen_serve := true;
        Alcotest.(check bool) "serve repro uses charm_serve" true
          (has "charm_serve")
    | Scenario.Fleet f ->
        seen_fleet := true;
        Alcotest.(check bool) "fleet repro uses --fleet" true
          (has (Printf.sprintf "--fleet %d" f.Scenario.shards));
        Alcotest.(check bool) "fleet repro names the router policy" true
          (has "--router");
        if f.Scenario.fshard_faults <> [] then
          Alcotest.(check bool) "fleet repro carries --faults-shard" true
            (has "--faults-shard")
  done;
  Alcotest.(check bool) "all scenario kinds exercised" true
    (!seen_batch && !seen_serve && !seen_fleet)

let test_fault_spec_roundtrip () =
  let t = scenario_with_faults () in
  let topo =
    Harness.Systems.topology t.Scenario.machine ~cache_scale:t.Scenario.cache_scale
  in
  let spec = Faults.Schedule.to_spec t.Scenario.faults in
  let reparsed = Faults.Schedule.parse_exn ~topo spec in
  Alcotest.(check int) "same event count"
    (List.length t.Scenario.faults)
    (List.length reparsed)

let suite =
  [
    Alcotest.test_case "generation deterministic" `Quick test_generation_deterministic;
    Alcotest.test_case "smoke seeds clean" `Slow test_smoke_seeds_clean;
    Alcotest.test_case "shrink candidates well-formed" `Quick test_shrink_candidates;
    Alcotest.test_case "repro rendering" `Quick test_repro_rendering;
    Alcotest.test_case "fault specs round-trip" `Quick test_fault_spec_roundtrip;
  ]
