(* Topology config-file loader: round-trips, golden preset equivalence,
   rejection diagnostics, and preset-as-data vs preset-as-code run
   determinism.  The shipped files under examples/topologies/ are found
   by probing upward from the dune sandbox cwd. *)

open Chipsim

let topo_dir =
  List.find_opt (fun d -> Sys.file_exists d && Sys.is_directory d)
    [
      "examples/topologies";
      "../examples/topologies";
      "../../examples/topologies";
      "../../../examples/topologies";
      "../../../../examples/topologies";
    ]

let shipped_files () =
  match topo_dir with
  | None -> []
  | Some dir ->
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".topo")
      |> List.sort compare
      |> List.map (Filename.concat dir)

let load file =
  match Topology.of_file file with
  | Ok t -> t
  | Error msg -> Alcotest.failf "%s: %s" file msg

let test_shipped_roundtrip () =
  let files = shipped_files () in
  if files = [] then Alcotest.fail "examples/topologies not found from test cwd";
  List.iter
    (fun file ->
      let t = load file in
      (match Topology.of_string (Topology.to_string t) with
      | Ok t' ->
          Alcotest.(check bool)
            (file ^ ": of_string (to_string t) = t")
            true (Topology.equal t t')
      | Error msg -> Alcotest.failf "%s: to_string not parseable: %s" file msg);
      (* the single-line spec form round-trips too *)
      match Topology.of_string (Topology.to_spec t) with
      | Ok t' ->
          Alcotest.(check bool)
            (file ^ ": of_string (to_spec t) = t")
            true (Topology.equal t t')
      | Error msg -> Alcotest.failf "%s: to_spec not parseable: %s" file msg)
    files

let test_golden_presets () =
  match topo_dir with
  | None -> Alcotest.fail "examples/topologies not found from test cwd"
  | Some dir ->
      let check_golden file preset =
        let t = load (Filename.concat dir file) in
        Alcotest.(check bool)
          (file ^ " equals its code preset")
          true
          (Topology.equal t preset)
      in
      check_golden "milan.topo" (Presets.amd_milan ());
      check_golden "milan-1s.topo" (Presets.amd_milan_1s ());
      check_golden "spr.topo" (Presets.intel_spr ());
      check_golden "tiny.topo" (Presets.tiny ())

let test_hetero_file () =
  match topo_dir with
  | None -> Alcotest.fail "examples/topologies not found from test cwd"
  | Some dir ->
      let t = load (Filename.concat dir "tiny-hetero.topo") in
      Alcotest.(check bool) "heterogeneous" true (Topology.heterogeneous t);
      Alcotest.(check bool) "chiplet 2 little" true
        (Topology.kind_of_chiplet t 2 = Topology.Little);
      Alcotest.(check bool) "chiplet 3 accel" true
        (Topology.kind_of_chiplet t 3 = Topology.Accel);
      let link = t.Topology.links.(3) in
      Alcotest.(check (float 1e-9)) "link 3 lat-mult" 1.5 link.Topology.lat_mult;
      Alcotest.(check (float 1e-9)) "link 3 bw" 2.0 link.Topology.bw_bytes_per_ns

let reject spec expect_frag =
  match Topology.of_string spec with
  | Ok _ -> Alcotest.failf "accepted %S" spec
  | Error msg ->
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool)
        (Printf.sprintf "%S error %S mentions %S" spec msg expect_frag)
        true
        (contains msg expect_frag)

let minimal = "sockets 1; chiplets-per-socket 2; cores-per-chiplet 2; chiplet-group-size 1"

let test_rejections () =
  reject "" "missing";
  reject "sockets 1" "missing";
  reject "sockets x; chiplets-per-socket 2; cores-per-chiplet 2" "sockets";
  reject (minimal ^ "; l3-bytes-per-chiplet 16QiB") "l3-bytes-per-chiplet";
  reject (minimal ^ "; frobnicate 3") "frobnicate";
  reject (minimal ^ "; chiplet-kinds big") "chiplet-kinds";
  reject (minimal ^ "; chiplet-kinds big medium") "medium";
  reject (minimal ^ "; kind little speed -1 access-mult 1 energy-pj 1") "speed";
  reject (minimal ^ "; kind turbo speed 2 access-mult 1 energy-pj 1") "turbo";
  reject (minimal ^ "; link 7 lat-mult 1.5 bw 2") "link";
  reject (minimal ^ "; link 0 lat-mult 1.5 frequency 2") "frequency";
  reject "sockets 1; chiplets-per-socket 8; cores-per-chiplet 2; chiplet-group-size 3"
    "group"

let test_comment_semicolon () =
  (* a ';' inside a '#' comment must not start a new directive *)
  match
    Topology.of_string
      (minimal ^ "\n# one thing; and another thing\nl3-bytes-per-chiplet 16KiB")
  with
  | Ok t -> Alcotest.(check int) "l3" (16 * 1024) t.Topology.l3_bytes_per_chiplet
  | Error msg -> Alcotest.failf "rejected commented spec: %s" msg

let test_of_file_missing () =
  match Topology.of_file "/nonexistent/nope.topo" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error _ -> ()

(* preset-as-data and preset-as-code must produce bit-identical runs:
   the same engine event counts and the same virtual makespan *)
let events_of inst =
  let machine = inst.Harness.Systems.machine in
  let pmu = Machine.pmu machine in
  Machine.accesses machine
  + Pmu.total pmu Pmu.Context_switch
  + Pmu.total pmu Pmu.Task_stolen

let run_gups inst =
  let env = inst.Harness.Systems.env in
  ignore
    (Workloads.Gups.run env
       { Workloads.Gups.table_words = 1 lsl 12; updates = 1 lsl 10; seed = 7 })

let test_run_determinism () =
  match topo_dir with
  | None -> Alcotest.fail "examples/topologies not found from test cwd"
  | Some dir ->
      let module Sys_ = Harness.Systems in
      let custom =
        Sys_.Custom { name = "milan"; topo = load (Filename.concat dir "milan.topo") }
      in
      let run machine =
        let inst = Sys_.make ~cache_scale:32 Sys_.Charm machine ~n_workers:8 () in
        run_gups inst;
        (events_of inst, (Sys_.report inst).Engine.Stats.makespan_ns)
      in
      let ev_data, mk_data = run custom in
      let ev_code, mk_code = run Sys_.Amd_milan in
      Alcotest.(check int) "event counts identical" ev_code ev_data;
      Alcotest.(check (float 0.0)) "makespan identical" mk_code mk_data

(* regression: an accel chiplet (speed > 1) rescales quanta backward,
   which once emptied the scheduler's advisory heap with future tasks
   still queued and tripped an assert in pop_own_slow *)
let test_hetero_end_to_end () =
  match topo_dir with
  | None -> Alcotest.fail "examples/topologies not found from test cwd"
  | Some dir ->
      let module Sys_ = Harness.Systems in
      let topo = load (Filename.concat dir "tiny-hetero.topo") in
      let inst =
        Sys_.make Sys_.Charm
          (Sys_.Custom { name = "tiny-hetero"; topo })
          ~n_workers:8 ()
      in
      run_gups inst;
      Alcotest.(check bool) "simulated some events" true (events_of inst > 0);
      Alcotest.(check bool) "accel cores spent energy" true
        (Chipsim.Machine.total_energy_pj inst.Sys_.machine > 0.0)

let suite =
  [
    Alcotest.test_case "shipped files round-trip" `Quick test_shipped_roundtrip;
    Alcotest.test_case "preset files equal code presets" `Quick
      test_golden_presets;
    Alcotest.test_case "tiny-hetero parses fully" `Quick test_hetero_file;
    Alcotest.test_case "malformed specs rejected with field names" `Quick
      test_rejections;
    Alcotest.test_case "';' in comments is inert" `Quick test_comment_semicolon;
    Alcotest.test_case "of_file on missing path" `Quick test_of_file_missing;
    Alcotest.test_case "preset-as-data runs bit-identical" `Quick
      test_run_determinism;
    Alcotest.test_case "heterogeneous machine end-to-end" `Quick
      test_hetero_end_to_end;
  ]
