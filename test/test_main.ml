let () =
  Alcotest.run "charm"
    [
      ("topology", Test_topology.suite);
      ("latency", Test_latency.suite);
      ("cache", Test_cache.suite);
      ("directory", Test_directory.suite);
      ("pmu", Test_pmu.suite);
      ("memchan", Test_memchan.suite);
      ("simmem", Test_simmem.suite);
      ("machine", Test_machine.suite);
      ("rng", Test_rng.suite);
      ("coroutine", Test_coroutine.suite);
      ("wsqueue", Test_wsqueue.suite);
      ("sched-smoke", Test_sched_smoke.suite);
      ("sched", Test_sched.suite);
      ("barrier", Test_barrier.suite);
      ("future", Test_future.suite);
      ("trace", Test_trace.suite);
      ("placement", Test_placement.suite);
      ("profiler", Test_profiler.suite);
      ("controller", Test_controller.suite);
      ("policy", Test_policy.suite);
      ("runtime", Test_runtime.suite);
      ("baselines", Test_baselines.suite);
      ("graph", Test_graph.suite);
      ("analytics", Test_analytics.suite);
      ("streamcluster", Test_streamcluster.suite);
      ("par", Test_par.suite);
      ("exec", Test_exec.suite);
      ("olap", Test_olap.suite);
      ("oltp", Test_oltp.suite);
      ("serve", Test_serve.suite);
      ("faults", Test_faults.suite);
    ]
