(* Serving layer: arrivals, histogram quantiles, admission bounds,
   weighted fair queueing, and end-to-end server determinism. *)

module Arrivals = Serving.Arrivals
module Histogram = Serving.Histogram
module Admission = Serving.Admission
module Fair_queue = Serving.Fair_queue
module Metrics = Serving.Metrics
module Server = Serving.Server
module Sys_ = Harness.Systems

(* -- arrivals ---------------------------------------------------------- *)

let test_poisson_deterministic () =
  let times seed =
    Arrivals.poisson_times ~rng:(Engine.Rng.create seed) ~rate_per_s:1000.0
      ~jobs:50
  in
  Alcotest.(check bool) "same seed, same trace" true (times 7 = times 7);
  Alcotest.(check bool) "different seed, different trace" true (times 7 <> times 8)

let test_poisson_shape () =
  let times =
    Arrivals.poisson_times ~rng:(Engine.Rng.create 3) ~rate_per_s:1000.0
      ~jobs:2000
  in
  Alcotest.(check int) "count" 2000 (Array.length times);
  Array.iteri
    (fun i t ->
      if i > 0 then
        Alcotest.(check bool) "strictly increasing" true (t > times.(i - 1)))
    times;
  (* mean gap of a 1000/s process is 1e6 ns; the 2000-sample average must
     land well within 10% *)
  let mean_gap = times.(Array.length times - 1) /. 2000.0 in
  Alcotest.(check bool) "mean gap near 1/rate" true
    (mean_gap > 0.9e6 && mean_gap < 1.1e6)

(* -- histogram --------------------------------------------------------- *)

let test_histogram_quantiles () =
  let h = Histogram.create () in
  for v = 1 to 100 do
    Histogram.observe h (float_of_int v)
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check (float 0.001)) "sum" 5050.0 (Histogram.sum h);
  Alcotest.(check (float 0.001)) "max" 100.0 (Histogram.max_value h);
  (* bucket growth is 12%, so quantiles carry <= 12% relative error *)
  let near q expect =
    let v = Histogram.quantile h q in
    Alcotest.(check bool)
      (Printf.sprintf "q%.2f=%g near %g" q v expect)
      true
      (v >= expect && v <= expect *. 1.13)
  in
  near 0.5 50.0;
  near 0.95 95.0;
  near 0.99 99.0;
  Alcotest.(check bool) "q1 clamped to max" true (Histogram.quantile h 1.0 <= 100.0)

let test_histogram_merge () =
  let a = Histogram.create () and b = Histogram.create () in
  for v = 1 to 50 do
    Histogram.observe a (float_of_int v)
  done;
  for v = 51 to 100 do
    Histogram.observe b (float_of_int v)
  done;
  Histogram.merge a b;
  Alcotest.(check int) "merged count" 100 (Histogram.count a);
  Alcotest.(check (float 0.001)) "merged max" 100.0 (Histogram.max_value a);
  Alcotest.check_raises "parameter mismatch"
    (Invalid_argument "Histogram.merge: incompatible bucket parameters")
    (fun () -> Histogram.merge a (Histogram.create ~growth:2.0 ()))

let test_histogram_p999 () =
  let h = Histogram.create () in
  for v = 1 to 10_000 do
    Histogram.observe h (float_of_int v)
  done;
  Alcotest.(check bool) "p999 above p99" true
    (Histogram.p999 h >= Histogram.p99 h);
  (* bucket growth 12% bounds the relative error *)
  Alcotest.(check bool) "p999 near 9990" true
    (Histogram.p999 h > 0.85 *. 9990.0 && Histogram.p999 h < 1.15 *. 9990.0)

let test_histogram_absurd_samples () =
  let h = Histogram.create () in
  Histogram.observe h 10.0;
  (* a single absurd sample must neither allocate an unbounded counts
     array nor wedge the quantile scan *)
  Histogram.observe h infinity;
  Histogram.observe h Float.nan;
  Histogram.observe h (-5.0);
  Alcotest.(check int) "all samples counted" 4 (Histogram.count h);
  Alcotest.(check bool) "median still finite" true
    (Float.is_finite (Histogram.p50 h));
  Alcotest.(check bool) "p999 lands in overflow bucket" true
    (Float.is_finite (Histogram.p999 h))

(* -- admission --------------------------------------------------------- *)

let test_admission_scaling () =
  let cfg = { Admission.max_queue_per_tenant = 10; max_global_queue = 40 } in
  let scaled = Admission.scale cfg ~capacity:0.5 in
  Alcotest.(check int) "tenant bound halved" 5 scaled.Admission.max_queue_per_tenant;
  Alcotest.(check int) "global bound halved" 20 scaled.Admission.max_global_queue;
  let floor = Admission.scale cfg ~capacity:0.0 in
  Alcotest.(check int) "never below one slot" 1 floor.Admission.max_queue_per_tenant;
  let full = Admission.scale cfg ~capacity:1.0 in
  Alcotest.(check bool) "full capacity unchanged" true (full = cfg)

let test_admission_bounds () =
  let cfg = { Admission.max_queue_per_tenant = 4; max_global_queue = 6 } in
  Alcotest.(check bool) "under both bounds" true
    (Admission.decide cfg ~tenant_depth:3 ~global_depth:3 = Admission.Admit);
  Alcotest.(check bool) "tenant full" true
    (Admission.decide cfg ~tenant_depth:4 ~global_depth:4
    = Admission.Shed_tenant_full);
  Alcotest.(check bool) "server full" true
    (Admission.decide cfg ~tenant_depth:2 ~global_depth:6
    = Admission.Shed_server_full);
  (* the tenant bound shields the global one *)
  Alcotest.(check bool) "tenant checked first" true
    (Admission.decide cfg ~tenant_depth:4 ~global_depth:6
    = Admission.Shed_tenant_full)

let test_server_sheds_at_bound () =
  (* one tenant allowed 2 queued jobs, swamped by an instantaneous burst:
     everything past [max_inflight + bound] must be shed, and
     admitted - completed must balance *)
  let inst = Sys_.make ~cache_scale:16 Sys_.Charm Sys_.Amd_milan ~n_workers:8 () in
  let base = Server.default_config ~seed:5 in
  let tenant =
    {
      Server.name = "burst";
      weight = 1.0;
      slo_factor = 3.0;
      process = Arrivals.Open_loop { rate_per_s = 1e9 };
      jobs = 30;
      mix = [ (Serving.Job.Gups 512, 1) ];
      replicas = 1;
    }
  in
  let cfg =
    {
      base with
      Server.tenants = [ tenant ];
      admission = { Admission.max_queue_per_tenant = 2; max_global_queue = 64 };
      max_inflight = 1;
    }
  in
  let r = Server.run inst cfg in
  let tr = List.hd r.Server.tenant_reports in
  Alcotest.(check int) "submitted" 30 tr.Server.submitted;
  Alcotest.(check bool) "shed something" true (tr.Server.shed > 0);
  Alcotest.(check int) "admitted + shed = submitted" 30
    (tr.Server.admitted + tr.Server.shed);
  Alcotest.(check int) "admitted all complete" tr.Server.admitted
    tr.Server.completed;
  Alcotest.(check int) "shed counter in registry" tr.Server.shed
    (Metrics.counter_value r.Server.registry "serve.shed")

(* -- fair queue -------------------------------------------------------- *)

let test_fair_queue_weights () =
  (* equal per-job cost, weights 2:1 - over any long prefix the weight-2
     tenant must be served about twice as often *)
  let fq = Fair_queue.create () in
  Fair_queue.add_tenant fq ~tenant:0 ~weight:2.0;
  Fair_queue.add_tenant fq ~tenant:1 ~weight:1.0;
  for i = 0 to 29 do
    Fair_queue.push fq ~tenant:0 ~cost:100.0 i;
    Fair_queue.push fq ~tenant:1 ~cost:100.0 i
  done;
  let served = [| 0; 0 |] in
  for _ = 1 to 18 do
    match Fair_queue.pop fq with
    | Some (t, _) -> served.(t) <- served.(t) + 1
    | None -> Alcotest.fail "queue ran dry"
  done;
  Alcotest.(check int) "weight-2 tenant got 2/3 of service" 12 served.(0);
  Alcotest.(check int) "weight-1 tenant got 1/3 of service" 6 served.(1)

let test_fair_queue_fifo_within_tenant () =
  let fq = Fair_queue.create () in
  Fair_queue.add_tenant fq ~tenant:0 ~weight:1.0;
  List.iter (fun i -> Fair_queue.push fq ~tenant:0 ~cost:50.0 i) [ 1; 2; 3 ];
  let order = List.init 3 (fun _ -> Option.get (Fair_queue.pop fq) |> snd) in
  Alcotest.(check (list int)) "FIFO per tenant" [ 1; 2; 3 ] order;
  Alcotest.(check (option (pair int int))) "empty" None (Fair_queue.pop fq)

(* -- metrics ----------------------------------------------------------- *)

let test_metrics_registry () =
  let m = Metrics.create () in
  Metrics.incr m "a.count";
  Metrics.incr m ~by:4 "a.count";
  Metrics.set_gauge m "b.gauge" 2.5;
  Metrics.observe m "c.hist" 10.0;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value m "a.count");
  Alcotest.(check (float 0.0)) "gauge" 2.5 (Metrics.gauge_value m "b.gauge");
  Alcotest.(check int) "histogram" 1 (Histogram.count (Metrics.histogram m "c.hist"));
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let json = Metrics.to_json m in
  Alcotest.(check bool) "counters in json" true (contains json "\"a.count\":5");
  Alcotest.(check bool) "gauges in json" true (contains json "\"b.gauge\":2.5")

let test_metrics_merge () =
  let a = Metrics.create () and b = Metrics.create () in
  Metrics.incr a ~by:3 "jobs";
  Metrics.incr b ~by:4 "jobs";
  Metrics.incr b "only.b";
  Metrics.set_gauge a "depth" 1.0;
  Metrics.set_gauge b "depth" 7.0;
  Metrics.observe a "lat" 100.0;
  Metrics.observe b "lat" 1000.0;
  Metrics.observe b "lat" 2000.0;
  Metrics.merge a b;
  Alcotest.(check int) "counters add" 7 (Metrics.counter_value a "jobs");
  Alcotest.(check int) "src-only counters appear" 1
    (Metrics.counter_value a "only.b");
  Alcotest.(check (float 0.0)) "gauges take src (last write wins)" 7.0
    (Metrics.gauge_value a "depth");
  Alcotest.(check int) "histograms merge samples" 3
    (Histogram.count (Metrics.histogram a "lat"));
  Alcotest.(check int) "src untouched" 4 (Metrics.counter_value b "jobs");
  Alcotest.(check int) "src histogram untouched" 2
    (Histogram.count (Metrics.histogram b "lat"))

let test_fair_queue_peek () =
  let fq = Fair_queue.create () in
  Fair_queue.add_tenant fq ~tenant:0 ~weight:1.0;
  Fair_queue.add_tenant fq ~tenant:1 ~weight:2.0;
  Alcotest.(check bool) "peek on empty" true (Fair_queue.peek fq = None);
  List.iter
    (fun i -> Fair_queue.push fq ~tenant:(i mod 2) ~cost:50.0 i)
    [ 0; 1; 2; 3; 4; 5 ];
  for _ = 1 to 6 do
    let p1 = Fair_queue.peek fq in
    let p2 = Fair_queue.peek fq in
    Alcotest.(check bool) "peek is stable" true (p1 = p2);
    Alcotest.(check bool) "peek matches pop" true (p1 = Fair_queue.pop fq)
  done;
  Alcotest.(check bool) "drained" true (Fair_queue.peek fq = None)

(* -- end-to-end determinism -------------------------------------------- *)

let run_default seed =
  let inst = Sys_.make ~cache_scale:16 Sys_.Charm Sys_.Amd_milan ~n_workers:16 () in
  let base = Server.default_config ~seed in
  let cfg =
    {
      base with
      Server.tenants =
        List.map (fun t -> { t with Server.jobs = 10 }) base.Server.tenants;
    }
  in
  Server.report_to_json (Server.run inst cfg)

let test_server_deterministic () =
  let a = run_default 42 and b = run_default 42 and c = run_default 43 in
  Alcotest.(check string) "same seed, identical report" a b;
  Alcotest.(check bool) "different seed, different report" true (a <> c)

(* -- CLI spec parsing -------------------------------------------------- *)

module Spec = Serving.Spec

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let check_err name result frag =
  match result with
  | Ok _ -> Alcotest.failf "%s: accepted a malformed spec" name
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %S mentions %S" name msg frag)
        true (contains msg frag)

let test_tenant_spec () =
  (match Spec.parse_tenant "gold:2:bfs+tpch:3" with
  | Ok (name, weight, mix) ->
      Alcotest.(check string) "name" "gold" name;
      Alcotest.(check (float 0.0)) "weight" 2.0 weight;
      Alcotest.(check int) "mix size" 2 (List.length mix);
      Alcotest.(check bool) "tpch:3 resolved" true
        (List.mem_assoc (Serving.Job.Tpch 3) mix)
  | Error msg -> Alcotest.failf "rejected valid tenant spec: %s" msg);
  check_err "empty" (Spec.parse_tenant "") "want NAME:WEIGHT:KIND";
  check_err "no kinds" (Spec.parse_tenant "gold") "want NAME:WEIGHT:KIND";
  check_err "bad weight" (Spec.parse_tenant "gold:x:bfs") "weight";
  check_err "negative weight" (Spec.parse_tenant "gold:-1:bfs") "positive";
  check_err "nan weight" (Spec.parse_tenant "gold:nan:bfs") "positive";
  check_err "empty kinds" (Spec.parse_tenant "gold:2:") "job-kind list";
  check_err "dangling plus" (Spec.parse_tenant "gold:2:bfs+") "job-kind list";
  check_err "unknown kind" (Spec.parse_tenant "gold:2:bfs+frob") "frob"

let test_shard_machines_spec () =
  let machines = [ ("amd", `A); ("intel", `I) ] in
  (match Spec.parse_shard_machines ~machines "amd, intel,amd" with
  | Ok ms -> Alcotest.(check int) "three shards" 3 (List.length ms)
  | Error msg -> Alcotest.failf "rejected valid machine list: %s" msg);
  check_err "empty list" (Spec.parse_shard_machines ~machines "") "empty";
  check_err "unknown machine"
    (Spec.parse_shard_machines ~machines "amd,xeon")
    "xeon"

let test_shard_fault_spec () =
  (match Spec.parse_shard_fault "2:membw@1000:0.5" with
  | Ok (shard, fault) ->
      Alcotest.(check int) "shard" 2 shard;
      Alcotest.(check string) "fault" "membw@1000:0.5" fault
  | Error msg -> Alcotest.failf "rejected valid shard fault: %s" msg);
  check_err "no colon" (Spec.parse_shard_fault "membw") "want SHARD:SPEC";
  check_err "empty shard" (Spec.parse_shard_fault ":membw") "want SHARD:SPEC";
  check_err "non-integer shard" (Spec.parse_shard_fault "x:membw") "integer";
  check_err "negative shard" (Spec.parse_shard_fault "-1:membw") ">= 0"

let suite =
  [
    Alcotest.test_case "poisson deterministic" `Quick test_poisson_deterministic;
    Alcotest.test_case "poisson shape" `Quick test_poisson_shape;
    Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
    Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
    Alcotest.test_case "histogram p999" `Quick test_histogram_p999;
    Alcotest.test_case "histogram absurd samples" `Quick
      test_histogram_absurd_samples;
    Alcotest.test_case "admission scaling" `Quick test_admission_scaling;
    Alcotest.test_case "admission bounds" `Quick test_admission_bounds;
    Alcotest.test_case "server sheds at bound" `Quick test_server_sheds_at_bound;
    Alcotest.test_case "fair queue weights" `Quick test_fair_queue_weights;
    Alcotest.test_case "fair queue fifo" `Quick test_fair_queue_fifo_within_tenant;
    Alcotest.test_case "metrics registry" `Quick test_metrics_registry;
    Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
    Alcotest.test_case "fair queue peek" `Quick test_fair_queue_peek;
    Alcotest.test_case "server deterministic" `Quick test_server_deterministic;
    Alcotest.test_case "tenant spec parsing" `Quick test_tenant_spec;
    Alcotest.test_case "shard machine list parsing" `Quick
      test_shard_machines_spec;
    Alcotest.test_case "shard fault parsing" `Quick test_shard_fault_spec;
  ]
