open Chipsim

let chan () =
  Memchan.create ~bin_ns:1000.0 ~nodes:2 ~channels_per_node:2
    ~bytes_per_ns_per_channel:1.0 ~line_bytes:64 ()
(* capacity per bin = 2 * 1.0 * 1000 = 2000 bytes = ~31 lines *)

let test_uncontended () =
  let c = chan () in
  let l = Memchan.access_ns c ~node:0 ~now_ns:0.0 ~base_ns:100.0 in
  Alcotest.(check bool) "near base" true (l >= 100.0 && l < 120.0)

let test_contention_grows () =
  let c = chan () in
  let first = Memchan.access_ns c ~node:0 ~now_ns:0.0 ~base_ns:100.0 in
  (* hammer the same bin far past saturation *)
  let last = ref first in
  for _ = 1 to 100 do
    last := Memchan.access_ns c ~node:0 ~now_ns:10.0 ~base_ns:100.0
  done;
  Alcotest.(check bool) "saturated latency grows" true (!last > 2.0 *. first);
  Alcotest.(check bool) "load ratio > 1" true (Memchan.load_ratio c ~node:0 ~now_ns:10.0 > 1.0)

let test_nodes_independent () =
  let c = chan () in
  for _ = 1 to 100 do
    ignore (Memchan.access_ns c ~node:0 ~now_ns:0.0 ~base_ns:100.0)
  done;
  let l = Memchan.access_ns c ~node:1 ~now_ns:0.0 ~base_ns:100.0 in
  Alcotest.(check bool) "other node unaffected" true (l < 140.0)

let test_bins_roll () =
  let c = chan () in
  for _ = 1 to 100 do
    ignore (Memchan.access_ns c ~node:0 ~now_ns:0.0 ~base_ns:100.0)
  done;
  (* a later bin starts fresh *)
  let l = Memchan.access_ns c ~node:0 ~now_ns:5_000.0 ~base_ns:100.0 in
  Alcotest.(check bool) "fresh bin" true (l < 140.0)

let test_bytes_served () =
  let c = chan () in
  for _ = 1 to 10 do
    ignore (Memchan.access_ns c ~node:1 ~now_ns:0.0 ~base_ns:50.0)
  done;
  Alcotest.(check int) "bytes" 640 (Memchan.bytes_served c ~node:1);
  Memchan.reset c;
  Alcotest.(check int) "reset" 0 (Memchan.bytes_served c ~node:1)

let test_ring_wraparound_alias () =
  (* a tiny 4-slot ring so bin 4 recycles bin 0's slot: a lagging access
     back in bin 0 must neither corrupt the newer bin's demand history
     (the old aliasing bug zeroed it) nor go uncounted in the totals *)
  let c =
    Memchan.create ~bin_ns:100.0 ~slots:4 ~nodes:1 ~channels_per_node:2
      ~bytes_per_ns_per_channel:1.0 ~line_bytes:64 ()
  in
  for _ = 1 to 10 do
    ignore (Memchan.access_ns c ~node:0 ~now_ns:450.0 ~base_ns:100.0)
  done;
  let load_before = Memchan.load_ratio c ~node:0 ~now_ns:450.0 in
  (* lagging worker touches bin 0, whose slot now holds bin 4 *)
  ignore (Memchan.access_ns c ~node:0 ~now_ns:50.0 ~base_ns:100.0);
  Alcotest.(check int) "stale access counted" 1 (Memchan.stale_accesses c);
  Alcotest.(check (float 1e-9)) "newer bin's demand intact" load_before
    (Memchan.load_ratio c ~node:0 ~now_ns:450.0);
  Alcotest.(check int) "totals include the stale access" (11 * 64)
    (Memchan.bytes_served c ~node:0)

let test_capacity_factor_throttles () =
  let c = chan () in
  let healthy = Memchan.access_ns c ~node:0 ~now_ns:0.0 ~base_ns:100.0 in
  Memchan.reset c;
  Memchan.set_capacity_factor c ~node:0 0.1;
  (* same demand against a tenth of the bandwidth saturates *)
  let throttled = ref 0.0 in
  for _ = 1 to 40 do
    throttled := Memchan.access_ns c ~node:0 ~now_ns:0.0 ~base_ns:100.0
  done;
  Alcotest.(check bool) "throttled node is slower" true
    (!throttled > 2.0 *. healthy);
  Alcotest.(check (float 1e-9)) "factor clamped below" 0.01
    (Memchan.set_capacity_factor c ~node:0 0.0;
     Memchan.capacity_factor c ~node:0);
  Alcotest.(check (float 1e-9)) "factor clamped above" 1.0
    (Memchan.set_capacity_factor c ~node:0 5.0;
     Memchan.capacity_factor c ~node:0)

let test_bad_node () =
  let c = chan () in
  Alcotest.check_raises "node range" (Invalid_argument "Memchan: node out of range")
    (fun () -> ignore (Memchan.access_ns c ~node:2 ~now_ns:0.0 ~base_ns:1.0))

let suite =
  [
    Alcotest.test_case "uncontended near base" `Quick test_uncontended;
    Alcotest.test_case "contention inflates" `Quick test_contention_grows;
    Alcotest.test_case "nodes independent" `Quick test_nodes_independent;
    Alcotest.test_case "bins roll over" `Quick test_bins_roll;
    Alcotest.test_case "bytes served" `Quick test_bytes_served;
    Alcotest.test_case "ring wraparound alias" `Quick test_ring_wraparound_alias;
    Alcotest.test_case "capacity factor throttles" `Quick
      test_capacity_factor_throttles;
    Alcotest.test_case "bad node" `Quick test_bad_node;
  ]
