let () =
  Alcotest.run "check"
    [
      ("invariants", Test_invariants.suite);
      ("determinism", Test_determinism.suite);
      ("scenario", Test_scenario.suite);
    ]
