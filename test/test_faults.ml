(* Fault injection: spec grammar determinism, scheduler reaction to
   offline/DVFS events, health-monitor detection, and byte-identical
   traced runs under a fault schedule. *)

open Chipsim
module Schedule = Faults.Schedule
module Injector = Faults.Injector
module Sched = Engine.Sched

let topo () = Presets.amd_milan ()
let machine () = Machine.create (topo ())

(* -- spec grammar ------------------------------------------------------ *)

let test_parse_round_trip () =
  let topo = topo () in
  let spec =
    "100:core-off:3; 250:dvfs:5:0.5; 300:l3-ways:1:4\n\
     # a comment\n\
     400:link:2:6.0; 500:xsocket:2.0; 600:membw:0:0.25; 700:core-on:3"
  in
  let sched = Schedule.parse_exn ~topo spec in
  Alcotest.(check int) "seven events" 7 (List.length sched);
  let reparsed = Schedule.parse_exn ~topo (Schedule.to_spec sched) in
  Alcotest.(check bool) "round-trips" true (sched = reparsed)

let test_parse_rand_deterministic () =
  let topo = topo () in
  let parse seed =
    Schedule.parse_exn ~topo (Printf.sprintf "rand:%d:20:5000" seed)
  in
  Alcotest.(check int) "count" 20 (List.length (parse 7));
  Alcotest.(check bool) "same seed, same schedule" true (parse 7 = parse 7);
  Alcotest.(check bool) "different seed differs" true (parse 7 <> parse 8)

let test_parse_rejects () =
  let topo = topo () in
  let bad spec =
    match Schedule.parse ~topo spec with
    | Ok _ -> Alcotest.failf "accepted %S" spec
    | Error _ -> ()
  in
  bad "100:frobnicate:1";
  bad "100:core-off:9999";
  bad "100:dvfs:0:0";
  bad "100:l3-ways:99:2";
  bad "not-a-time:core-off:1";
  bad "100:membw:0:1.5"

(* -- scheduler reaction ------------------------------------------------ *)

let test_offline_migrates_when_cores_free () =
  (* plenty of spare cores: the evicted worker migrates instead of dying *)
  let m = machine () in
  let sched = Sched.create m ~n_workers:4 ~placement:(fun w -> w) in
  Injector.attach sched (Schedule.parse_exn ~topo:(topo ()) "5:core-off:1")
  |> ignore;
  let done_ = ref 0 in
  for _ = 1 to 64 do
    ignore
      (Sched.spawn sched (fun ctx ->
           Sched.Ctx.work ctx 500.0;
           incr done_))
  done;
  ignore (Sched.run sched : float);
  Alcotest.(check int) "all tasks completed" 64 !done_;
  Alcotest.(check bool) "worker moved off core 1" true
    (Sched.worker_core sched 1 <> 1);
  Alcotest.(check (option int)) "core 1 vacated" None
    (Sched.worker_of_core sched 1);
  Alcotest.(check int) "nobody lost" 4 (Sched.active_workers sched)

let test_offline_drains_and_completes () =
  (* every core owned: no migration target, so the worker offlines in
     place and its queue drains to a neighbour *)
  let m = machine () in
  let topo = topo () in
  let n = Chipsim.Topology.num_cores topo in
  let sched = Sched.create m ~n_workers:n ~placement:(fun w -> w) in
  Injector.attach sched (Schedule.parse_exn ~topo "5:core-off:1") |> ignore;
  let done_ = ref 0 in
  for _ = 1 to 4 * n do
    ignore
      (Sched.spawn sched (fun ctx ->
           Sched.Ctx.work ctx 3_000.0;
           incr done_))
  done;
  ignore (Sched.run sched : float);
  Alcotest.(check int) "all tasks completed" (4 * n) !done_;
  Alcotest.(check bool) "worker on core 1 offlined" true
    (Sched.worker_offlined sched 1);
  Alcotest.(check int) "one worker out" (n - 1) (Sched.active_workers sched)

let test_core_on_restores () =
  let m = machine () in
  let sched = Sched.create m ~n_workers:2 ~placement:(fun w -> w) in
  Injector.attach sched
    (Schedule.parse_exn ~topo:(topo ()) "2:core-off:1; 20:core-on:1")
  |> ignore;
  let done_ = ref 0 in
  for _ = 1 to 64 do
    ignore
      (Sched.spawn sched (fun ctx ->
           Sched.Ctx.work ctx 2_000.0;
           incr done_))
  done;
  ignore (Sched.run sched : float);
  Alcotest.(check int) "all tasks completed" 64 !done_;
  Alcotest.(check bool) "worker back online" false
    (Sched.worker_offlined sched 1);
  Alcotest.(check int) "both workers active" 2 (Sched.active_workers sched)

let test_dvfs_scales_makespan () =
  let run spec =
    let m = machine () in
    let sched = Sched.create m ~n_workers:1 ~placement:(fun w -> w) in
    (match spec with
    | Some s -> Injector.attach sched (Schedule.parse_exn ~topo:(topo ()) s) |> ignore
    | None -> ());
    for _ = 1 to 32 do
      ignore (Sched.spawn sched (fun ctx -> Sched.Ctx.work ctx 1_000.0))
    done;
    Sched.run sched
  in
  let nominal = run None in
  let throttled = run (Some "0:dvfs:0:0.5") in
  let ratio = throttled /. nominal in
  Alcotest.(check bool)
    (Printf.sprintf "half speed ~ 2x makespan (got %.2f)" ratio)
    true
    (ratio > 1.9 && ratio < 2.1)

(* -- health monitor ---------------------------------------------------- *)

(* Drive real cross-chiplet traffic through the machine: two cores on
   different chiplets write the same line set in turn, so every round the
   observed core pulls all the lines back through its I/O-die link (both
   sides write — a read would be served by the untouched private L2).
   Each round feeds the monitor one observation for the observed core. *)
let traffic_round m ~monitor ~round =
  let observed = 0 and peer = 8 in
  let now = ref (float_of_int round *. 50_000.0) in
  for line = 0 to 63 do
    now := !now +. Machine.access_line m ~core:peer ~now_ns:!now ~write:true ~line
  done;
  for line = 0 to 63 do
    now := !now +. Machine.access_line m ~core:observed ~now_ns:!now ~write:true ~line
  done;
  Charm.Health_monitor.observe monitor ~worker:0 ~core:observed ~now:!now

let test_silent_fault_detected () =
  let m = machine () in
  let monitor = Charm.Health_monitor.create m ~n_workers:1 in
  for round = 0 to 9 do
    traffic_round m ~monitor ~round
  done;
  Alcotest.(check bool) "healthy under baseline traffic" false
    (Charm.Health_monitor.any_sick monitor);
  (* silent degradation: link multiplier is invisible to the OS path *)
  Modifiers.set_link_mult (Machine.modifiers m) 0 8.0;
  let detected_after = ref None in
  (try
     for round = 10 to 40 do
       traffic_round m ~monitor ~round;
       if Charm.Health_monitor.sick monitor ~chiplet:0 then begin
         detected_after := Some (round - 10);
         raise Exit
       end
     done
   with Exit -> ());
  (match !detected_after with
  | Some rounds ->
      Alcotest.(check bool)
        (Printf.sprintf "detected within 10 samples (took %d)" rounds)
        true (rounds <= 10)
  | None -> Alcotest.fail "silent link fault never detected");
  Alcotest.(check bool) "first_flag_ns recorded" true
    (Charm.Health_monitor.first_flag_ns monitor <> None)

let test_os_visible_fault_instant () =
  let m = machine () in
  let monitor = Charm.Health_monitor.create m ~n_workers:1 in
  Modifiers.set_core_speed (Machine.modifiers m) 3 0.4;
  (* one observation, no EWMA history needed: DVFS is read from the
     modifier generation, i.e. sysfs on a real machine *)
  Charm.Health_monitor.observe monitor ~worker:0 ~core:0 ~now:1_000.0;
  Alcotest.(check bool) "chiplet 0 flagged instantly" true
    (Charm.Health_monitor.sick monitor ~chiplet:0);
  Alcotest.(check (list int)) "only chiplet 0" [ 0 ]
    (Charm.Health_monitor.sick_chiplets monitor)

(* -- end-to-end determinism ------------------------------------------- *)

let test_faulted_serve_traces_identical () =
  let run () =
    let inst =
      Harness.Systems.make ~cache_scale:16 Harness.Systems.Charm
        Harness.Systems.Amd_milan ~n_workers:8 ()
    in
    let topo = Machine.topology inst.Harness.Systems.machine in
    Injector.attach inst.Harness.Systems.env.Workloads.Exec_env.sched
      (Schedule.parse_exn ~topo "300:dvfs:0:0.5; 500:link:0:4; 900:core-off:2")
    |> ignore;
    let tr = Engine.Trace.create () in
    let base = Serving.Server.default_config ~seed:11 in
    let cfg =
      {
        base with
        Serving.Server.tenants =
          List.map
            (fun t -> { t with Serving.Server.jobs = 8 })
            base.Serving.Server.tenants;
        trace = Some tr;
      }
    in
    let report = Serving.Server.run inst cfg in
    (Serving.Server.report_to_json report, Engine.Trace.to_chrome_json tr)
  in
  let json1, trace1 = run () in
  let json2, trace2 = run () in
  Alcotest.(check bool) "reports byte-identical" true (json1 = json2);
  Alcotest.(check bool) "traces byte-identical" true (trace1 = trace2);
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let found = ref false in
    for i = 0 to n - m do
      if (not !found) && String.sub s i m = sub then found := true
    done;
    !found
  in
  Alcotest.(check bool) "fault events present" true
    (contains trace1 {|"cat":"fault"|})

let suite =
  [
    Alcotest.test_case "spec round-trip" `Quick test_parse_round_trip;
    Alcotest.test_case "rand expansion deterministic" `Quick
      test_parse_rand_deterministic;
    Alcotest.test_case "bad specs rejected" `Quick test_parse_rejects;
    Alcotest.test_case "offline core migrates" `Quick
      test_offline_migrates_when_cores_free;
    Alcotest.test_case "offline core drains" `Quick
      test_offline_drains_and_completes;
    Alcotest.test_case "core-on restores" `Quick test_core_on_restores;
    Alcotest.test_case "dvfs scales makespan" `Quick test_dvfs_scales_makespan;
    Alcotest.test_case "silent fault detected" `Quick test_silent_fault_detected;
    Alcotest.test_case "os-visible fault instant" `Quick
      test_os_visible_fault_instant;
    Alcotest.test_case "faulted serve deterministic" `Quick
      test_faulted_serve_traces_identical;
  ]
