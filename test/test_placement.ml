open Chipsim
module Placement = Charm.Placement

let amd () = Presets.amd_milan ()

let test_paper_example () =
  (* 64 workers, 8-core chiplets: spread_rate 1 is invalid (paper §4.3) *)
  let topo = amd () in
  Alcotest.(check bool) "spread 1 invalid for 64" false
    (Placement.valid_spread topo ~spread_rate:1 ~n_workers:64);
  Alcotest.(check bool) "spread 8 valid for 64" true
    (Placement.valid_spread topo ~spread_rate:8 ~n_workers:64);
  Alcotest.(check int) "min valid spread" 8 (Placement.min_valid_spread topo ~n_workers:64);
  Alcotest.(check int) "8 workers can pack" 1 (Placement.min_valid_spread topo ~n_workers:8)

let test_compact_fills_chiplet () =
  let topo = amd () in
  match Placement.gang topo ~spread_rate:1 ~n_workers:8 with
  | Some cores ->
      Alcotest.(check (array int)) "chiplet 0 cores" (Array.init 8 Fun.id) cores
  | None -> Alcotest.fail "spread 1 should be valid for 8 workers"

let test_spread_uses_more_chiplets () =
  let topo = amd () in
  let chiplets_used spread n =
    match Placement.gang topo ~spread_rate:spread ~n_workers:n with
    | None -> -1
    | Some cores ->
        Array.to_list cores
        |> List.map (Topology.chiplet_of_core topo)
        |> List.sort_uniq compare |> List.length
  in
  Alcotest.(check int) "spread 1 -> 1 chiplet" 1 (chiplets_used 1 8);
  Alcotest.(check int) "spread 2 -> 2 chiplets" 2 (chiplets_used 2 8);
  Alcotest.(check int) "spread 8 -> 8 chiplets" 8 (chiplets_used 8 8)

let test_socket_fill () =
  let topo = amd () in
  (* 64 workers stay on socket 0 regardless of spread *)
  match Placement.gang topo ~spread_rate:8 ~n_workers:64 with
  | None -> Alcotest.fail "valid gang expected"
  | Some cores ->
      Array.iter
        (fun core ->
          Alcotest.(check int) "socket 0" 0 (Topology.socket_of_core topo core))
        cores

let test_second_socket_spills () =
  let topo = amd () in
  match Placement.gang topo ~spread_rate:8 ~n_workers:96 with
  | None -> Alcotest.fail "valid gang expected"
  | Some cores ->
      let sockets = Array.map (Topology.socket_of_core topo) cores in
      Alcotest.(check int) "worker 0 on socket 0" 0 sockets.(0);
      Alcotest.(check int) "worker 64 on socket 1" 1 sockets.(64)

let test_numa_node_of_core () =
  let topo = amd () in
  Alcotest.(check int) "core 10" 0 (Placement.numa_node_of_core topo 10);
  Alcotest.(check int) "core 100" 1 (Placement.numa_node_of_core topo 100)

(* Alg. 2's key guarantee: for every valid configuration, the mapping is
   injective and in range (paper: "a deterministic and collision-free core
   assignment"). *)
let prop_collision_free =
  QCheck.Test.make ~name:"alg2 is collision-free over valid configs" ~count:500
    QCheck.(pair (int_range 1 8) (int_range 1 128))
    (fun (spread_rate, n_workers) ->
      let topo = amd () in
      if not (Placement.valid_spread topo ~spread_rate ~n_workers) then true
      else
        match Placement.gang topo ~spread_rate ~n_workers with
        | Some cores ->
            Array.for_all (fun c -> c >= 0 && c < Topology.num_cores topo) cores
        | None -> false)

let prop_intel_collision_free =
  QCheck.Test.make ~name:"alg2 collision-free on the Intel preset" ~count:300
    QCheck.(pair (int_range 1 4) (int_range 1 96))
    (fun (spread_rate, n_workers) ->
      let topo = Presets.intel_spr () in
      if not (Placement.valid_spread topo ~spread_rate ~n_workers) then true
      else Option.is_some (Placement.gang topo ~spread_rate ~n_workers))

(* heterogeneity: a gang on a big/little machine fills big chiplets
   first, and ~prefer_fast:false (or a homogeneous machine) restores the
   historical identity order *)
let hetero () =
  Topology.v ~sockets:1 ~chiplets_per_socket:4 ~cores_per_chiplet:2
    ~chiplet_group_size:2 ~l3_bytes_per_chiplet:(16 * 1024)
    ~l2_bytes_per_core:4096 ~mem_channels_per_socket:2
    ~chiplet_kinds:[| Topology.Little; Accel; Big; Little |] ()

let test_prefer_big_cores () =
  let topo = hetero () in
  (match Placement.gang topo ~spread_rate:2 ~n_workers:4 with
  | None -> Alcotest.fail "valid gang expected"
  | Some cores ->
      (* general-task chiplets first: big chiplet 2 (1.0), littles 0 and 3
         (0.6, stable by index), and the accel chiplet 1 (general-tasks 0)
         last; spread 2 interleaves the gang across the two fastest
         general chiplets *)
      Alcotest.(check (array int)) "fast general chiplets first"
        [| 4; 0; 5; 1 |] cores);
  (match Placement.gang ~prefer_fast:false topo ~spread_rate:2 ~n_workers:4 with
  | None -> Alcotest.fail "valid gang expected"
  | Some cores ->
      Alcotest.(check (array int)) "identity order when disabled"
        [| 0; 2; 1; 3 |] cores);
  match Placement.gang (amd ()) ~spread_rate:1 ~n_workers:8 with
  | None -> Alcotest.fail "valid gang expected"
  | Some cores ->
      Alcotest.(check (array int)) "homogeneous unchanged"
        (Array.init 8 Fun.id) cores

let prop_hetero_collision_free =
  QCheck.Test.make ~name:"alg2 collision-free on a hetero machine" ~count:300
    QCheck.(pair (int_range 1 2) (int_range 1 8))
    (fun (spread_rate, n_workers) ->
      let topo = hetero () in
      if not (Placement.valid_spread topo ~spread_rate ~n_workers) then true
      else
        match Placement.gang topo ~spread_rate ~n_workers with
        | Some cores ->
            let sorted = Array.copy cores in
            Array.sort compare sorted;
            Array.length
              (Array.of_list (List.sort_uniq compare (Array.to_list cores)))
            = Array.length cores
            && Array.for_all
                 (fun c -> c >= 0 && c < Topology.num_cores topo)
                 sorted
        | None -> false)

let test_out_of_range_worker () =
  let topo = amd () in
  Alcotest.check_raises "worker range"
    (Invalid_argument "Placement.core_of_worker: worker out of range") (fun () ->
      ignore (Placement.core_of_worker topo ~spread_rate:1 ~n_workers:4 ~worker:4))

let suite =
  [
    Alcotest.test_case "paper bounds-check example" `Quick test_paper_example;
    Alcotest.test_case "compact fills one chiplet" `Quick test_compact_fills_chiplet;
    Alcotest.test_case "spread uses more chiplets" `Quick test_spread_uses_more_chiplets;
    Alcotest.test_case "socket fill" `Quick test_socket_fill;
    Alcotest.test_case "second socket spills" `Quick test_second_socket_spills;
    Alcotest.test_case "numa node of core" `Quick test_numa_node_of_core;
    Alcotest.test_case "out-of-range worker" `Quick test_out_of_range_worker;
    Alcotest.test_case "big cores preferred on hetero machines" `Quick
      test_prefer_big_cores;
    QCheck_alcotest.to_alcotest prop_collision_free;
    QCheck_alcotest.to_alcotest prop_intel_collision_free;
    QCheck_alcotest.to_alcotest prop_hetero_collision_free;
  ]
