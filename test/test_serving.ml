let () =
  Alcotest.run "serving"
    [
      ("serve", Test_serve.suite);
      ("energy", Test_energy.suite);
      ("replica", Test_replica.suite);
      ("histogram-prop", Test_prop_histogram.suite);
      ("faults", Test_faults.suite);
    ]
