let () =
  Alcotest.run "serving"
    [
      ("serve", Test_serve.suite);
      ("histogram-prop", Test_prop_histogram.suite);
      ("faults", Test_faults.suite);
    ]
