let () =
  Alcotest.run "chipsim"
    [
      ("topology", Test_topology.suite);
      ("topology-file", Test_topo_file.suite);
      ("latency", Test_latency.suite);
      ("cache", Test_cache.suite);
      ("directory", Test_directory.suite);
      ("pmu", Test_pmu.suite);
      ("memchan", Test_memchan.suite);
      ("memchan-prop", Test_prop_memchan.suite);
      ("simmem", Test_simmem.suite);
      ("machine", Test_machine.suite);
    ]
