let sample ~local ~chiplet ~numa ~dram =
  {
    Charm.Profiler.local_hits = local;
    remote_chiplet = chiplet;
    remote_numa = numa;
    dram;
  }

let base = Charm.Config.default.Charm.Config.rmt_chip_access_rate

let test_static_modes () =
  let loc =
    Charm.Controller.create
      { Charm.Config.default with Charm.Config.approach = Charm.Config.Location_centric }
  in
  let d = Charm.Controller.decide loc (sample ~local:0 ~chiplet:0 ~numa:0 ~dram:1000) in
  Alcotest.(check bool) "location threshold high" true (d.Charm.Controller.threshold > base);
  let cache =
    Charm.Controller.create
      { Charm.Config.default with Charm.Config.approach = Charm.Config.Cache_centric }
  in
  let d = Charm.Controller.decide cache (sample ~local:0 ~chiplet:1000 ~numa:0 ~dram:0) in
  Alcotest.(check bool) "cache threshold low" true (d.Charm.Controller.threshold < base)

let test_adaptive_dram_heavy () =
  let c = Charm.Controller.create Charm.Config.default in
  let d = Charm.Controller.decide c (sample ~local:10 ~chiplet:10 ~numa:0 ~dram:1000) in
  Alcotest.(check string) "cache-centric when thrashing" "cache-centric"
    (Charm.Config.approach_to_string d.Charm.Controller.mode);
  Alcotest.(check bool) "eager to spread" true (d.Charm.Controller.threshold < base)

let test_adaptive_sharing_heavy () =
  let c = Charm.Controller.create Charm.Config.default in
  let d = Charm.Controller.decide c (sample ~local:10 ~chiplet:1000 ~numa:10 ~dram:10) in
  Alcotest.(check string) "location-centric when sharing" "location-centric"
    (Charm.Config.approach_to_string d.Charm.Controller.mode)

let test_adaptive_keeps_mode_when_ambiguous () =
  let c = Charm.Controller.create Charm.Config.default in
  ignore (Charm.Controller.decide c (sample ~local:0 ~chiplet:0 ~numa:0 ~dram:100));
  let d = Charm.Controller.decide c (sample ~local:0 ~chiplet:40 ~numa:30 ~dram:30) in
  Alcotest.(check string) "sticks to last mode" "cache-centric"
    (Charm.Config.approach_to_string d.Charm.Controller.mode)

let test_mode_switch_counted () =
  let c = Charm.Controller.create Charm.Config.default in
  ignore (Charm.Controller.decide c (sample ~local:0 ~chiplet:0 ~numa:0 ~dram:100));
  Alcotest.(check int) "first resolution is not a switch" 0
    (Charm.Controller.mode_switches c);
  ignore (Charm.Controller.decide c (sample ~local:0 ~chiplet:100 ~numa:0 ~dram:0));
  Alcotest.(check int) "direction change counted once" 1
    (Charm.Controller.mode_switches c);
  ignore (Charm.Controller.decide c (sample ~local:0 ~chiplet:100 ~numa:0 ~dram:0));
  Alcotest.(check int) "steady mode adds nothing" 1
    (Charm.Controller.mode_switches c)

let suite =
  [
    Alcotest.test_case "static modes scale threshold" `Quick test_static_modes;
    Alcotest.test_case "adaptive: dram-heavy -> cache-centric" `Quick test_adaptive_dram_heavy;
    Alcotest.test_case "adaptive: sharing-heavy -> location-centric" `Quick
      test_adaptive_sharing_heavy;
    Alcotest.test_case "adaptive: ambiguous keeps mode" `Quick
      test_adaptive_keeps_mode_when_ambiguous;
    Alcotest.test_case "mode switches counted" `Quick test_mode_switch_counted;
  ]
