(* charm_serve: online multi-tenant serving of a job mix on the simulated
   chiplet machine under a runtime system — Poisson (or closed-loop)
   arrivals, admission control, weighted fair queueing, and a JSON metrics
   report on stdout (deterministic for a given seed: two identical
   invocations print identical bytes).

   Examples:
     charm_serve -s charm -m amd -n 32 --rate 5000 --seed 42
     charm_serve -s ring -n 32 --rate 8000 --jobs 100 --queue-bound 16
     charm_serve -s charm -n 32 --closed-loop 8 --think-us 50 *)

open Cmdliner
module Sys_ = Harness.Systems
module Serve = Serving

let systems =
  [
    ("charm", Sys_.Charm);
    ("charm-async", Sys_.Charm_os_threads);
    ("ring", Sys_.Ring);
    ("dw-native", Sys_.Dw_native);
    ("shoal", Sys_.Shoal);
    ("asymsched", Sys_.Asymsched);
    ("sam", Sys_.Sam);
    ("os-default", Sys_.Os_default);
    ("local-cache", Sys_.Local_cache);
    ("distributed-cache", Sys_.Distributed_cache);
  ]

let machines =
  [ ("amd", Sys_.Amd_milan); ("amd1s", Sys_.Amd_milan_1s); ("intel", Sys_.Intel_spr) ]

(* tenant mixes are "name:weight:kind+kind+..." triples; the default three
   tenants mirror the paper's workload families.  Parsing lives in
   Serving.Spec so malformed specs fail with errors naming the field. *)
let msg_of_result = function Ok v -> Ok v | Error m -> Error (`Msg m)
let parse_tenant spec = msg_of_result (Serve.Spec.parse_tenant spec)

let default_mixes =
  [
    ("graph", 2.0, [ (Serve.Job.Bfs, 2); (Serve.Job.Pagerank, 1) ]);
    ("olap", 1.0, [ (Serve.Job.Tpch 1, 1); (Serve.Job.Tpch 3, 1); (Serve.Job.Tpch 6, 1) ]);
    ("oltp", 1.0, [ (Serve.Job.Ycsb_batch 256, 2); (Serve.Job.Gups 4096, 1) ]);
  ]

(* --faults accepts the spec inline or as a path to a spec file *)
let load_fault_spec spec =
  if Sys.file_exists spec && not (Sys.is_directory spec) then begin
    let ic = open_in spec in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end
  else spec

(* --shard-machines accepts a comma-separated list cycled over the
   shards; each entry is a preset ("amd,intel") or a topology-file path,
   so a fleet can mix preset and data-driven machines *)
let parse_shard_machines spec =
  msg_of_result
    (Serve.Spec.parse_shard_machines ~fallback:Sys_.custom_machine_of_spec
       ~machines spec)

(* --faults-shard entries are SHARD:SPEC (spec inline or a file path) *)
let parse_shard_fault spec = msg_of_result (Serve.Spec.parse_shard_fault spec)

let run_fleet ~n_shards ~sys ~machine ~shard_machines ~workers ~cache_scale
    ~policy ~epoch_us ~diurnal ~diurnal_period_us ~no_relocation ~plant
    ~shard_faults ~fault_spec ~trace_file ~cfg =
  let machines_list =
    match shard_machines with [] -> [ machine ] | ms -> ms
  in
  (* --faults without a shard qualifier applies to shard 0 *)
  let fault_specs =
    (match fault_spec with Some s -> [ (0, s) ] | None -> [])
    @ shard_faults
  in
  let faults =
    List.map
      (fun (shard, spec) ->
        let kind = List.nth machines_list (shard mod List.length machines_list) in
        let topo = Sys_.topology kind ~cache_scale in
        match Faults.Schedule.parse ~topo (load_fault_spec spec) with
        | Ok schedule -> (shard, schedule)
        | Error msg ->
            Printf.eprintf "charm_serve: bad fault spec for shard %d: %s\n"
              shard msg;
            exit 2)
      fault_specs
  in
  let fleet_cfg =
    {
      Fleet.Cluster.n_shards;
      sys;
      machines = machines_list;
      n_workers = workers;
      cache_scale;
      policy;
      epoch_us;
      serve = { cfg with Serve.Server.trace = None };
      diurnal_amplitude = diurnal;
      diurnal_period_us = diurnal_period_us;
      faults;
      relocation = not no_relocation;
      degraded_capacity = 0.75;
      degraded_sick = 0.25;
      plant;
      trace = trace_file <> None;
    }
  in
  match Fleet.Cluster.run fleet_cfg with
  | res ->
      print_string (Fleet.Cluster.result_to_json res);
      print_newline ();
      (match trace_file with
      | Some file when res.Fleet.Cluster.traces <> [] ->
          Engine.Trace.save_merged res.Fleet.Cluster.traces file;
          let events =
            List.fold_left
              (fun acc tr -> acc + Engine.Trace.num_events tr)
              0 res.Fleet.Cluster.traces
          in
          Printf.eprintf
            "wrote %d trace events (%d tracks) to %s (load in chrome://tracing)\n"
            events
            (List.length res.Fleet.Cluster.traces)
            file
      | _ -> ())
  | exception Invalid_argument msg ->
      Printf.eprintf "charm_serve: %s\n" msg;
      exit 2
  | exception Chipsim.Invariant.Violation msg ->
      Printf.eprintf "charm_serve: INVARIANT VIOLATION: %s\n" msg;
      exit 3

let main sys machine topology_spec workers cache_scale rate jobs seed
    max_inflight queue_bound slo_factor closed_loop think_us tenant_specs
    graph_scale dag_mapper energy energy_weight power_cap replicate_specs
    trace_file fault_spec check fleet router epoch_us
    shard_machines shard_faults diurnal diurnal_period_us no_relocation plant =
  (* --topology overrides -m with a data-driven machine (file or inline
     spec); in fleet mode it becomes the default machine of every shard *)
  let machine =
    match topology_spec with
    | None -> machine
    | Some spec -> (
        match Sys_.custom_machine_of_spec spec with
        | Ok m -> m
        | Error msg ->
            Printf.eprintf "charm_serve: bad --topology spec: %s\n" msg;
            exit 2)
  in
  if closed_loop = None && rate <= 0.0 then begin
    Printf.eprintf "charm_serve: --rate must be positive\n";
    exit 2
  end;
  if fleet > 0 && closed_loop <> None then begin
    Printf.eprintf "charm_serve: --fleet drives open-loop tenants only\n";
    exit 2
  end;
  let mixes = if tenant_specs = [] then default_mixes else tenant_specs in
  let process =
    match closed_loop with
    | Some clients ->
        Serve.Arrivals.Closed_loop { clients; think_ns = think_us *. 1e3 }
    | None -> Serve.Arrivals.Open_loop { rate_per_s = rate }
  in
  if not (Float.is_finite energy_weight && energy_weight >= 0.0) then begin
    Printf.eprintf "charm_serve: --energy-weight must be finite and >= 0\n";
    exit 2
  end;
  if not (Float.is_finite power_cap && power_cap >= 0.0) then begin
    Printf.eprintf "charm_serve: --power-cap must be finite and >= 0\n";
    exit 2
  end;
  let tenants =
    List.map
      (fun (name, weight, mix) ->
        { Serve.Server.name; weight; slo_factor; process; jobs; mix; replicas = 1 })
      mixes
  in
  (* --replicate NAME:K marks configured tenants for redundant execution *)
  let tenants =
    List.fold_left
      (fun tenants (rname, k) ->
        if not (List.exists (fun t -> t.Serve.Server.name = rname) tenants)
        then begin
          Printf.eprintf "charm_serve: --replicate %s:%d names no tenant (have %s)\n"
            rname k
            (String.concat "/"
               (List.map (fun t -> t.Serve.Server.name) tenants));
          exit 2
        end;
        List.map
          (fun t ->
            if t.Serve.Server.name = rname then
              { t with Serve.Server.replicas = k }
            else t)
          tenants)
      tenants replicate_specs
  in
  let trace = Option.map (fun _ -> Engine.Trace.create ()) trace_file in
  let cfg =
    {
      Serve.Server.tenants;
      admission =
        {
          Serve.Admission.max_queue_per_tenant = queue_bound;
          max_global_queue = queue_bound * max 2 (List.length tenants);
        };
      max_inflight;
      seed;
      data =
        {
          Serve.Job.default_data_config with
          graph_scale;
          dag_comm_aware = dag_mapper = Taskgraph.Mapper.Comm_aware;
          seed = seed + 1;
        };
      trace;
      on_complete = None;
      check;
    }
  in
  if fleet > 0 then begin
    if energy || energy_weight > 0.0 || power_cap > 0.0 then begin
      Printf.eprintf
        "charm_serve: --energy/--energy-weight/--power-cap are \
         single-machine knobs (shards build their own runtimes)\n";
      exit 2
    end;
    run_fleet ~n_shards:fleet ~sys ~machine ~shard_machines ~workers
      ~cache_scale ~policy:router ~epoch_us ~diurnal ~diurnal_period_us
      ~no_relocation ~plant ~shard_faults ~fault_spec ~trace_file ~cfg
  end
  else
  match
    let charm_config =
      if energy_weight > 0.0 || power_cap > 0.0 then
        Some
          {
            Charm.Config.default with
            Charm.Config.energy_weight;
            power_cap_mw = power_cap;
          }
      else None
    in
    let inst =
      Sys_.make ?charm_config ~cache_scale sys machine ~n_workers:workers ()
    in
    (* CHARM's runtime flips the meter on when a cap/weight is set; bare
       --energy (or a non-CHARM system) turns accounting on directly *)
    if energy || energy_weight > 0.0 || power_cap > 0.0 then
      Engine.Sched.set_energy inst.Sys_.env.Workloads.Exec_env.sched true;
    (match fault_spec with
    | Some spec -> (
        let topo = Chipsim.Machine.topology inst.Sys_.machine in
        match Faults.Schedule.parse ~topo (load_fault_spec spec) with
        | Ok schedule ->
            ignore
              (Faults.Injector.attach inst.Sys_.env.Workloads.Exec_env.sched
                 schedule
                : Faults.Injector.t)
        | Error msg ->
            Printf.eprintf "charm_serve: bad --faults spec: %s\n" msg;
            exit 2)
    | None -> ());
    Serve.Server.run inst cfg
  with
  | report ->
      print_string (Serve.Server.report_to_json report);
      print_newline ();
      (match (trace, trace_file) with
      | Some tr, Some file ->
          Engine.Trace.save tr file;
          Printf.eprintf
            "wrote %d trace events to %s (load in chrome://tracing)\n%s"
            (Engine.Trace.num_events tr) file (Engine.Trace.summary tr)
      | _ -> ())
  | exception Invalid_argument msg ->
      (* configuration rejected by the server or machine model: a user
         error, not a crash *)
      Printf.eprintf "charm_serve: %s\n" msg;
      exit 2
  | exception Chipsim.Invariant.Violation msg ->
      Printf.eprintf "charm_serve: INVARIANT VIOLATION: %s\n" msg;
      exit 3

let tenant_conv = Arg.conv (parse_tenant, fun ppf (n, w, _) -> Format.fprintf ppf "%s:%g" n w)

let sys_arg =
  Arg.(value & opt (enum systems) Sys_.Charm & info [ "s"; "system" ] ~doc:"Runtime system.")

let machine_arg =
  Arg.(value & opt (enum machines) Sys_.Amd_milan & info [ "m"; "machine" ] ~doc:"Machine model.")

let topology_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "topology" ] ~docv:"SPEC"
        ~doc:
          "Data-driven machine topology overriding $(b,-m): a path to a \
           topology file (see examples/topologies/) or an inline \
           ';'-separated spec. Supports heterogeneous chiplet kinds \
           (big/little/accel) and per-chiplet link overrides.")

let workers_arg =
  Arg.(value & opt int 32 & info [ "n"; "workers" ] ~doc:"Worker threads.")

let cache_scale_arg =
  Arg.(value & opt int 16 & info [ "cache-scale" ] ~doc:"Divide cache capacities by this factor.")

let rate_arg =
  Arg.(value & opt float 5000.0 & info [ "rate" ] ~doc:"Offered load per tenant (jobs/s of virtual time).")

let jobs_arg =
  Arg.(value & opt int 40 & info [ "jobs" ] ~doc:"Jobs submitted per tenant.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master RNG seed.")

let inflight_arg =
  Arg.(value & opt int 4 & info [ "max-inflight" ] ~doc:"Concurrent jobs in service.")

let queue_bound_arg =
  Arg.(value & opt int 64 & info [ "queue-bound" ] ~doc:"Per-tenant admission queue bound.")

let slo_arg =
  Arg.(value & opt float 3.0 & info [ "slo-factor" ] ~doc:"SLO as a multiple of the tenant's mean job cost.")

let closed_loop_arg =
  Arg.(value & opt (some int) None & info [ "closed-loop" ] ~doc:"Closed-loop clients per tenant (instead of Poisson arrivals).")

let think_arg =
  Arg.(value & opt float 50.0 & info [ "think-us" ] ~doc:"Closed-loop think time (us of virtual time).")

let tenants_arg =
  Arg.(value & opt_all tenant_conv [] & info [ "tenant" ] ~doc:"Tenant spec name:weight:kind+kind (e.g. gold:2:bfs+tpch:3); repeatable.")

let graph_scale_arg =
  Arg.(value & opt int 10 & info [ "graph-scale" ] ~doc:"log2 of shared graph vertices.")

let dag_mapper_arg =
  let policies =
    List.map
      (fun p -> (Taskgraph.Mapper.policy_name p, p))
      Taskgraph.Mapper.all_policies
  in
  Arg.(
    value
    & opt (enum policies) Taskgraph.Mapper.Comm_aware
    & info [ "dag-mapper" ] ~docv:"POLICY"
        ~doc:
          "How task-DAG tenants (kinds $(b,dag:SHAPE:LAYERS)) are mapped \
           onto chiplets: $(b,comm-aware) (contract heavy edges, place \
           clusters by kind-weighted load) or $(b,blind) (round-robin \
           baseline).")

let energy_arg =
  Arg.(
    value & flag
    & info [ "energy" ]
        ~doc:
          "Turn per-quantum compute-energy accounting on (memory energy is \
           always metered). The report gains machine and per-tenant energy \
           totals; virtual time is unaffected, so latencies match an \
           accounting-off run exactly.")

let energy_weight_arg =
  Arg.(
    value & opt float 0.0
    & info [ "energy-weight" ] ~docv:"W"
        ~doc:
          "EDP-aware placement weight for CHARM's policy: flee-migration \
           scoring divides each chiplet's speed by (1 + $(docv) x the \
           kind's energy density), steering hot tenants toward efficient \
           silicon. Implies --energy. 0 disables.")

let power_cap_arg =
  Arg.(
    value & opt float 0.0
    & info [ "power-cap" ] ~docv:"MW"
        ~doc:
          "Machine power cap in simulated milliwatts (1 mW = 1 pJ/ns). \
           CHARM's controller watches a sliding-window power estimate and \
           sheds the hottest chiplet's frequency (DVFS actuator) when the \
           cap is exceeded, releasing throttles once comfortably below. \
           Implies --energy. 0 disables.")

let replicate_conv =
  Arg.conv
    ( (fun spec -> msg_of_result (Serve.Spec.parse_replication spec)),
      fun ppf (n, k) -> Format.fprintf ppf "%s:%d" n k )

let replicate_arg =
  Arg.(
    value
    & opt_all replicate_conv []
    & info [ "replicate" ] ~docv:"NAME:K"
        ~doc:
          "Run the named tenant's jobs $(b,K) times each on distinct \
           chiplets and vote on the result tokens; injected corruption \
           faults are masked and counted as divergences in the report. \
           Repeatable, one entry per tenant.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the serving run (task quanta, \
           steals, migrations, policy decisions, job admit/shed/start/finish \
           instants, periodic fill-class counter track) to $(docv); \
           deterministic for a fixed --seed. A text summary goes to stderr.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault schedule: either an inline spec or a path to \
           a spec file. Entries are ';'- or newline-separated \
           $(i,TIME_US:KIND:ARGS) — core-off/core-on:CORE, dvfs:CORE:SPEED, \
           l3-ways:CHIPLET:WAYS, link:CHIPLET:MULT, xsocket:MULT, \
           membw:NODE:FACTOR, corrupt:SEED (poison one replicated job's \
           result token) — plus rand:SEED:N:HORIZON_US for seeded \
           random events. Same seed and spec give a byte-identical report.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Run with executable invariants on: scheduler causality and \
           per-core quantum ordering, machine fill-class conservation, and \
           serving-layer admission/completion conservation. A violation \
           aborts with exit code 3.")

let fleet_arg =
  Arg.(
    value & opt int 0
    & info [ "fleet" ] ~docv:"N"
        ~doc:
          "Shard the server across $(docv) simulated machines behind a \
           cluster router (0 = single-machine mode). Per-tenant --rate and \
           --jobs become cluster-wide; the report is the fleet JSON \
           summary (merged metrics, router counters, per-shard detail).")

let router_arg =
  let policies =
    List.map (fun p -> (Fleet.Router.policy_name p, p)) Fleet.Router.all_policies
  in
  Arg.(
    value
    & opt (enum policies) Fleet.Router.Charm_aware
    & info [ "router" ] ~docv:"POLICY"
        ~doc:
          "Fleet placement policy: $(b,charm) (load over effective \
           capacity, chiplet-health-aware, tenant affinity), \
           $(b,least-loaded) (load only, chiplet-blind), $(b,ewma) \
           (EWMA of observed per-shard job latencies times queue depth), \
           or $(b,round-robin).")

let epoch_us_arg =
  Arg.(
    value & opt float 250.0
    & info [ "epoch-us" ] ~docv:"US"
        ~doc:
          "Fleet routing epoch (virtual us): shards drain with a dispatch \
           horizon at each epoch end, and routing/relocation decisions run \
           at epoch boundaries.")

let shard_machines_conv =
  Arg.conv
    ( parse_shard_machines,
      fun ppf ms ->
        Format.fprintf ppf "%s"
          (String.concat "," (List.map Sys_.machine_name ms)) )

let shard_machines_arg =
  Arg.(
    value
    & opt (some shard_machines_conv) None
    & info [ "shard-machines" ] ~docv:"LIST"
        ~doc:
          "Comma-separated machine specs cycled over the shards: presets \
           (e.g. $(b,amd,intel)) and/or topology-file paths (e.g. \
           $(b,amd,examples/topologies/tiny-hetero.topo) for a \
           heterogeneous fleet); defaults to the --machine preset for \
           every shard.")

let shard_fault_conv =
  Arg.conv (parse_shard_fault, fun ppf (s, spec) -> Format.fprintf ppf "%d:%s" s spec)

let shard_faults_arg =
  Arg.(
    value
    & opt_all shard_fault_conv []
    & info [ "faults-shard" ] ~docv:"SHARD:SPEC"
        ~doc:
          "Fault schedule for one shard in fleet mode (spec inline or a \
           file path; same grammar as --faults, which in fleet mode \
           applies to shard 0). Repeatable.")

let diurnal_arg =
  Arg.(
    value & opt float 0.0
    & info [ "diurnal" ] ~docv:"A"
        ~doc:
          "Diurnal modulation amplitude in [0,1] for fleet arrivals: the \
           Poisson rate swings by a factor (1 ± $(docv)) over each period.")

let diurnal_period_arg =
  Arg.(
    value & opt float 4000.0
    & info [ "diurnal-period-us" ] ~docv:"US" ~doc:"Diurnal period (virtual us).")

let no_relocation_arg =
  Arg.(
    value & flag
    & info [ "no-relocation" ]
        ~doc:
          "Disable cross-shard relocation of queued jobs away from \
           degraded shards.")

let plant_arg =
  let plants =
    [
      ("drop-relocated", Fleet.Cluster.Drop_relocated);
      ("route-offline", Fleet.Cluster.Route_offline);
    ]
  in
  Arg.(
    value
    & opt (some (enum plants)) None
    & info [ "plant" ] ~docv:"BUG"
        ~doc:
          "Plant a deliberate fleet routing bug ($(b,drop-relocated) or \
           $(b,route-offline)) so --check can demonstrate the fleet \
           invariants trip. Testing hook; do not use for measurements.")

let cmd =
  let doc = "serve a multi-tenant job mix online on the simulated chiplet machine" in
  Cmd.v
    (Cmd.info "charm_serve" ~doc)
    Term.(
      const main $ sys_arg $ machine_arg $ topology_arg $ workers_arg
      $ cache_scale_arg
      $ rate_arg $ jobs_arg $ seed_arg $ inflight_arg $ queue_bound_arg
      $ slo_arg $ closed_loop_arg $ think_arg $ tenants_arg $ graph_scale_arg
      $ dag_mapper_arg $ energy_arg $ energy_weight_arg $ power_cap_arg
      $ replicate_arg
      $ trace_arg $ faults_arg $ check_arg $ fleet_arg $ router_arg
      $ epoch_us_arg
      $ Term.(
          const (function None -> [] | Some ms -> ms) $ shard_machines_arg)
      $ shard_faults_arg $ diurnal_arg $ diurnal_period_arg $ no_relocation_arg
      $ plant_arg)

let () = exit (Cmd.eval cmd)
