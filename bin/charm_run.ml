(* charm_run: run one workload under one runtime system on one simulated
   machine and print throughput plus the chiplet-level access breakdown.

   Examples:
     charm_run -w bfs -s charm -n 64
     charm_run -w tpch -q 3 -s ring -n 8
     charm_run -w ycsb -s distributed-cache -n 32 -m amd --cache-scale 32 *)

open Cmdliner
module Sys_ = Harness.Systems

let systems =
  [
    ("charm", Sys_.Charm);
    ("charm-async", Sys_.Charm_os_threads);
    ("ring", Sys_.Ring);
    ("dw-native", Sys_.Dw_native);
    ("shoal", Sys_.Shoal);
    ("asymsched", Sys_.Asymsched);
    ("sam", Sys_.Sam);
    ("os-default", Sys_.Os_default);
    ("local-cache", Sys_.Local_cache);
    ("distributed-cache", Sys_.Distributed_cache);
  ]

let machines =
  [ ("amd", Sys_.Amd_milan); ("amd1s", Sys_.Amd_milan_1s); ("intel", Sys_.Intel_spr) ]

let workloads =
  [ "bfs"; "pr"; "cc"; "sssp"; "gups"; "graph500"; "streamcluster"; "sgd";
    "tpch"; "ycsb"; "tpcc"; "dag" ]

let run_workload env inst ~workload ~graph_scale ~query ~seed =
  let open Workloads in
  let alloc ~elt_bytes ~count = env.Exec_env.alloc_shared ~elt_bytes ~count in
  (* [-seed] reseeds every input generator; absent, each keeps its
     built-in default so existing runs reproduce unchanged *)
  let seeded default mk = match seed with None -> default | Some s -> mk s in
  let graph ~weighted =
    Csr.of_kronecker ~weighted ~alloc
      (Kronecker.generate ?seed ~scale:graph_scale ~edge_factor:16 ())
  in
  let source g =
    let rec go v = if v >= g.Csr.n - 1 || Csr.degree g v > 0 then v else go (v + 1) in
    go 0
  in
  (match workload with
  | "bfs" ->
      let g = graph ~weighted:false in
      let _, r = Bfs.run env g ~source:(source g) in
      Printf.printf "BFS: %.3e edges/s\n" (Workload_result.throughput_per_s r)
  | "pr" ->
      let g = graph ~weighted:false in
      let _, r = Pagerank.run env g () in
      Printf.printf "PageRank: %.3e edge-updates/s\n" (Workload_result.throughput_per_s r)
  | "cc" ->
      let g = graph ~weighted:false in
      let _, r = Concomp.run env g in
      Printf.printf "CC: %.3e edges/s\n" (Workload_result.throughput_per_s r)
  | "sssp" ->
      let g = graph ~weighted:true in
      let _, r = Sssp.run env g ~source:(source g) in
      Printf.printf "SSSP: %.3e relaxations/s\n" (Workload_result.throughput_per_s r)
  | "gups" ->
      let p = seeded Gups.default_params (fun s -> { Gups.default_params with Gups.seed = s }) in
      let r = Gups.run env p in
      Printf.printf "GUPS: %.4f giga-updates/s\n" (Gups.gups r)
  | "graph500" ->
      let g = graph ~weighted:false in
      let p = { Graph500.default_params with Graph500.scale = graph_scale } in
      let p = seeded p (fun s -> { p with Graph500.seed = s }) in
      let r = Graph500.run env g p in
      Printf.printf "Graph500: %.3e TEPS\n" (Graph500.teps r)
  | "streamcluster" ->
      let p =
        seeded Streamcluster.default_params (fun s ->
            { Streamcluster.default_params with Streamcluster.seed = s })
      in
      let o = Streamcluster.run env p in
      Printf.printf "Streamcluster: %.3e point-center evals/s (cost %.1f, %d centers)\n"
        (Workload_result.throughput_per_s o.Streamcluster.result)
        o.Streamcluster.total_cost o.Streamcluster.centers_opened
  | "sgd" ->
      let data = Dataset.generate ~alloc ?seed ~samples:1024 ~features:1024 () in
      let o = Dimmwitted.run env ~replica:Sgd.Per_node data in
      Format.printf "%a@." Dimmwitted.pp o
  | "tpch" ->
      let data = Olap.Tpch_data.generate ~alloc ?seed ~sf:0.01 () in
      let qs = match query with Some q -> [ q ] | None -> Olap.Tpch_queries.query_numbers in
      List.iter
        (fun q ->
          let r, t = Olap.Tpch_queries.execute env data q in
          Printf.printf "Q%-2d: %8.3f ms  checksum %.6e (%d groups)\n" q (t /. 1e6)
            r.Olap.Tpch_queries.checksum r.Olap.Tpch_queries.rows_out)
        qs
  | "ycsb" ->
      let p = seeded Oltp.Ycsb.default_params (fun s -> { Oltp.Ycsb.default_params with Oltp.Ycsb.seed = s }) in
      let o = Oltp.Ycsb.run env p in
      Printf.printf "YCSB: %.3e commits/s (%d commits)\n" o.Oltp.Ycsb.commits_per_second
        o.Oltp.Ycsb.commits
  | "tpcc" ->
      let p = seeded Oltp.Tpcc.default_params (fun s -> { Oltp.Tpcc.default_params with Oltp.Tpcc.seed = s }) in
      let o = Oltp.Tpcc.run env p in
      Printf.printf "TPC-C: %.3e commits/s (%d new orders)\n"
        o.Oltp.Tpcc.commits_per_second o.Oltp.Tpcc.new_orders
  | "dag" ->
      (* one inference DAG per shape, executed under both mappers so the
         comm-aware advantage is visible from the CLI *)
      let topo = Chipsim.Machine.topology (Exec_env.machine env) in
      let dag_seed = Option.value seed ~default:7 in
      let usable =
        let sched = env.Exec_env.sched in
        let hosted =
          List.filter
            (fun ch ->
              List.exists
                (fun core -> Engine.Sched.worker_of_core sched core <> None)
                (Chipsim.Topology.cores_of_chiplet topo ch))
            (List.init (Chipsim.Topology.num_chiplets topo) Fun.id)
        in
        match hosted with [] -> None | l -> Some (Array.of_list l)
      in
      List.iter
        (fun shape ->
          let g = Taskgraph.Graph.generate ~shape ~layers:6 ~seed:dag_seed () in
          Printf.printf "DAG %-12s (%d nodes, %d edges):" (Taskgraph.Graph.name g)
            (Taskgraph.Graph.num_nodes g) (Taskgraph.Graph.num_edges g);
          List.iter
            (fun policy ->
              let m = Taskgraph.Mapper.map ?usable topo ~policy g in
              let span = ref 0.0 in
              ignore
                (env.Exec_env.run (fun ctx ->
                     span := (Taskgraph.Exec.run ctx m g).Taskgraph.Exec.span_ns)
                  : float);
              Printf.printf "  %s %.1f us (cut %d KiB)"
                (Taskgraph.Mapper.policy_name policy)
                (!span /. 1e3)
                (m.Taskgraph.Mapper.cross_bytes / 1024))
            Taskgraph.Mapper.all_policies;
          print_newline ())
        Taskgraph.Graph.all_shapes
  | other -> Printf.eprintf "unknown workload %s\n" other);
  let report = Sys_.report inst in
  Format.printf "---@.%a@." Engine.Stats.pp report

(* same definition of a simulated event as [bench core]: accesses charged
   through the machine model plus scheduler events (switches, steals,
   migrations) *)
let engine_events machine =
  let open Chipsim in
  let pmu = Machine.pmu machine in
  Machine.accesses machine
  + Pmu.total pmu Pmu.Context_switch
  + Pmu.total pmu Pmu.Task_stolen
  + Pmu.total pmu Pmu.Migration

(* --faults accepts the spec inline or as a path to a spec file *)
let load_fault_spec spec =
  if Sys.file_exists spec && not (Sys.is_directory spec) then begin
    let ic = open_in spec in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end
  else spec

let main sys machine topology_spec workers cache_scale workload graph_scale
    query seed energy energy_weight power_cap trace_file fault_spec check =
  (* --topology overrides -m with a data-driven machine *)
  let machine =
    match topology_spec with
    | None -> machine
    | Some spec -> (
        match Sys_.custom_machine_of_spec spec with
        | Ok m -> m
        | Error msg ->
            Printf.eprintf "charm_run: bad --topology spec: %s\n" msg;
            exit 2)
  in
  if not (Float.is_finite energy_weight && energy_weight >= 0.0) then begin
    Printf.eprintf "charm_run: --energy-weight must be finite and >= 0\n";
    exit 2
  end;
  if not (Float.is_finite power_cap && power_cap >= 0.0) then begin
    Printf.eprintf "charm_run: --power-cap must be finite and >= 0\n";
    exit 2
  end;
  let charm_config =
    if energy_weight > 0.0 || power_cap > 0.0 then
      Some
        {
          Charm.Config.default with
          Charm.Config.energy_weight;
          power_cap_mw = power_cap;
        }
    else None
  in
  let inst =
    match
      Sys_.make ?charm_config ~cache_scale sys machine ~n_workers:workers ()
    with
    | inst -> inst
    | exception Invalid_argument msg ->
        (* rejected configuration (too many workers, inverted cache scale,
           ...): a user error, not a crash *)
        Printf.eprintf "charm_run: %s\n" msg;
        exit 2
  in
  if energy || energy_weight > 0.0 || power_cap > 0.0 then
    Engine.Sched.set_energy inst.Sys_.env.Workloads.Exec_env.sched true;
  if check then
    Engine.Sched.set_check inst.Sys_.env.Workloads.Exec_env.sched true;
  (match fault_spec with
  | Some spec -> (
      let topo = Chipsim.Machine.topology inst.Sys_.machine in
      match Faults.Schedule.parse ~topo (load_fault_spec spec) with
      | Ok schedule ->
          ignore
            (Faults.Injector.attach inst.Sys_.env.Workloads.Exec_env.sched
               schedule
              : Faults.Injector.t)
      | Error msg ->
          Printf.eprintf "charm_run: bad --faults spec: %s\n" msg;
          exit 2)
  | None -> ());
  let trace =
    match trace_file with
    | None -> None
    | Some _ ->
        let tr = Engine.Trace.create () in
        (* CHARM wires every layer; baselines still get the scheduler's
           quantum / steal / park / migration timeline *)
        (match inst.Sys_.charm with
        | Some rt -> Charm.Runtime.attach_trace rt tr
        | None -> Engine.Sched.set_trace inst.Sys_.env.Workloads.Exec_env.sched (Some tr));
        Some tr
  in
  Printf.printf "system=%s machine=[%s] workers=%d cache-scale=%d\n"
    (Sys_.sys_name sys)
    (Format.asprintf "%a" Chipsim.Topology.pp (Chipsim.Machine.topology inst.Sys_.machine))
    workers cache_scale;
  let t0 = Unix.gettimeofday () in
  (match run_workload inst.Sys_.env inst ~workload ~graph_scale ~query ~seed with
  | () -> ()
  | exception Chipsim.Invariant.Violation msg ->
      Printf.eprintf "charm_run: INVARIANT VIOLATION: %s\n" msg;
      exit 3);
  let wall = Unix.gettimeofday () -. t0 in
  let events = engine_events inst.Sys_.machine in
  Printf.printf "engine: %d simulated events in %.3fs (%.3g events/s end-to-end)\n"
    events wall
    (float_of_int events /. Float.max 1e-9 wall);
  match (trace, trace_file) with
  | Some tr, Some file ->
      Engine.Trace.save tr file;
      Printf.eprintf "wrote %d trace events to %s (load in chrome://tracing)\n%s"
        (Engine.Trace.num_events tr) file (Engine.Trace.summary tr)
  | _ -> ()

let sys_arg =
  Arg.(value & opt (enum systems) Sys_.Charm & info [ "s"; "system" ] ~doc:"Runtime system.")

let machine_arg =
  Arg.(value & opt (enum machines) Sys_.Amd_milan & info [ "m"; "machine" ] ~doc:"Machine model.")

let topology_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "topology" ] ~docv:"SPEC"
        ~doc:
          "Data-driven machine topology overriding $(b,-m): a path to a \
           topology file (see examples/topologies/) or an inline \
           ';'-separated spec. Supports heterogeneous chiplet kinds \
           (big/little/accel) and per-chiplet link overrides.")

let workers_arg =
  Arg.(value & opt int 64 & info [ "n"; "workers" ] ~doc:"Worker threads.")

let cache_scale_arg =
  Arg.(value & opt int 16 & info [ "cache-scale" ] ~doc:"Divide cache capacities by this factor.")

let workload_arg =
  Arg.(
    value
    & opt (enum (List.map (fun w -> (w, w)) workloads)) "bfs"
    & info [ "w"; "workload" ] ~doc:"Workload to run.")

let graph_scale_arg =
  Arg.(value & opt int 13 & info [ "graph-scale" ] ~doc:"log2 of graph vertices.")

let query_arg =
  Arg.(value & opt (some int) None & info [ "q"; "query" ] ~doc:"TPC-H query number.")

let seed_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "seed" ]
        ~doc:"Seed for all input generators (graph, tables, access streams).")

let energy_arg =
  Arg.(
    value & flag
    & info [ "energy" ]
        ~doc:
          "Turn per-quantum compute-energy accounting on (memory energy is \
           always metered); the report's energy line gains the compute \
           term. Virtual time is unaffected.")

let energy_weight_arg =
  Arg.(
    value & opt float 0.0
    & info [ "energy-weight" ] ~docv:"W"
        ~doc:
          "EDP-aware placement weight for CHARM's policy (see charm_serve). \
           Implies --energy. 0 disables.")

let power_cap_arg =
  Arg.(
    value & opt float 0.0
    & info [ "power-cap" ] ~docv:"MW"
        ~doc:
          "Machine power cap in simulated milliwatts (1 mW = 1 pJ/ns), \
           enforced by CHARM's controller via DVFS shedding of the hottest \
           chiplet. Implies --energy. 0 disables.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the run (task quanta, steals, \
           parks, migrations, policy decisions) to $(docv); a text summary \
           goes to stderr.")

let faults_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "faults" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault schedule: either an inline spec or a path to \
           a spec file. Entries are ';'- or newline-separated \
           $(i,TIME_US:KIND:ARGS) — core-off/core-on:CORE, dvfs:CORE:SPEED, \
           l3-ways:CHIPLET:WAYS, link:CHIPLET:MULT, xsocket:MULT, \
           membw:NODE:FACTOR — plus rand:SEED:N:HORIZON_US for seeded \
           random events.")

let check_arg =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Run with executable invariants on: every quantum asserts \
           scheduler causality (no task before its ready time, offline \
           cores idle, per-core quantum ordering) and the machine model's \
           conservation laws (fill-class counts sum to total accesses, \
           memory-channel ring byte conservation, L3 way bounds). A \
           violation aborts with exit code 3.")

let cmd =
  let doc = "run a workload on the simulated chiplet machine under a runtime system" in
  Cmd.v
    (Cmd.info "charm_run" ~doc)
    Term.(
      const main $ sys_arg $ machine_arg $ topology_arg $ workers_arg
      $ cache_scale_arg $ workload_arg $ graph_scale_arg $ query_arg
      $ seed_arg $ energy_arg $ energy_weight_arg $ power_cap_arg
      $ trace_arg $ faults_arg $ check_arg)

let () = exit (Cmd.eval cmd)
