(* charm_fuzz: seeded scenario fuzzing for the simulator stack.

   Draws random end-to-end scenarios (topology, system, worker count,
   fault schedule, batch workload or multi-tenant serving mix), runs each
   with executable invariants on, and checks determinism (two fresh runs
   must agree byte-for-byte on report, trace and results) plus functional
   equality against sequential / single-worker references.  On failure the
   scenario is shrunk to a minimal still-failing one and printed as a
   ready-to-paste charm_run / charm_serve command line.

   Examples:
     charm_fuzz --seeds 200 --smoke            # the CI gate
     charm_fuzz --seeds 50 --start-seed 1000   # a nightly shard
     charm_fuzz --plant skip-ready-clamp --seeds 50 --expect-violation

   Exit codes: 0 all scenarios clean (or an expected violation was caught
   and shrunk), 1 a scenario failed (repro on stdout and in --out), 2 a
   planted violation was NOT caught. *)

open Cmdliner

let plants = [ "skip-ready-clamp"; "vote-skip" ]

let main seeds start_seed smoke plant expect_violation max_repro_faults out =
  (match plant with
  | Some kind ->
      if not (List.mem kind plants) then begin
        Printf.eprintf "charm_fuzz: unknown --plant kind %s (known: %s)\n" kind
          (String.concat ", " plants);
        exit 2
      end;
      (* the scheduler reads this lazily before the first quantum runs *)
      Unix.putenv "CHARM_CHECK_PLANT" kind
  | None -> ());
  let mode = if smoke then Check.Scenario.Smoke else Check.Scenario.Deep in
  let outcome =
    Check.Fuzz.run
      ~log:(fun line ->
        Printf.eprintf "%s\n%!" line)
      ~mode ~start_seed ~seeds ()
  in
  let text = Check.Fuzz.outcome_to_text outcome in
  print_string text;
  (match out with
  | Some file ->
      let oc = open_out file in
      output_string oc text;
      (match outcome with
      | Check.Fuzz.Failed f ->
          output_string oc
            (Printf.sprintf "\n# minimized scenario spec\n%s\n" f.repro)
      | Check.Fuzz.Clean _ -> ());
      close_out oc
  | None -> ());
  match (outcome, expect_violation) with
  | Check.Fuzz.Clean _, false -> exit 0
  | Check.Fuzz.Clean _, true ->
      Printf.eprintf
        "charm_fuzz: expected a violation but every scenario passed\n";
      exit 2
  | Check.Fuzz.Failed f, true ->
      let n_faults = List.length f.minimized.Check.Scenario.faults in
      if f.failure.Check.Scenario.oracle <> "invariant" then begin
        Printf.eprintf
          "charm_fuzz: expected an invariant violation but the failing \
           oracle was %s\n"
          f.failure.Check.Scenario.oracle;
        exit 2
      end
      else if n_faults > max_repro_faults then begin
        Printf.eprintf
          "charm_fuzz: violation caught but the shrunk repro keeps %d fault \
           events (limit %d)\n"
          n_faults max_repro_faults;
        exit 2
      end
      else begin
        Printf.eprintf
          "charm_fuzz: planted violation caught and shrunk to %d fault \
           events\n"
          n_faults;
        exit 0
      end
  | Check.Fuzz.Failed _, false -> exit 1

let seeds_arg =
  Arg.(value & opt int 50 & info [ "seeds" ] ~doc:"Number of scenarios to run.")

let start_seed_arg =
  Arg.(value & opt int 0 & info [ "start-seed" ] ~doc:"First generation seed (scenario i uses start-seed + i).")

let smoke_arg =
  Arg.(
    value & flag
    & info [ "smoke" ]
        ~doc:
          "Draw small scenarios (single-socket machine, few workers, small \
           inputs) — the fast CI gate. Without it, scenarios span every \
           preset machine and wider size ranges (the nightly fuzz).")

let plant_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "plant" ] ~docv:"KIND"
        ~doc:
          "Deliberately plant a known bug before fuzzing (sets \
           CHARM_CHECK_PLANT). Known kinds: skip-ready-clamp (the scheduler \
           skips the ready-at causality clamp) and vote-skip (the replica \
           voter returns replica 0's token unchecked — needs scenarios \
           with 3-replica tenants over >= 3 chiplets to trip, so give it \
           plenty of seeds; CI uses a deterministic charm_serve repro \
           instead). Used to prove the invariants catch real violations.")

let expect_arg =
  Arg.(
    value & flag
    & info [ "expect-violation" ]
        ~doc:
          "Invert the exit semantics: succeed only if an invariant \
           violation is found and shrunk within --max-repro-faults events.")

let max_repro_arg =
  Arg.(
    value & opt int 5
    & info [ "max-repro-faults" ]
        ~doc:
          "With --expect-violation, the maximum fault-schedule events the \
           shrunk repro may keep.")

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "out" ] ~docv:"FILE"
        ~doc:"Also write the outcome report (and any repro spec) to $(docv) — the CI failure artifact.")

let cmd =
  let doc = "fuzz the simulator with seeded end-to-end scenarios and shrinking repros" in
  Cmd.v
    (Cmd.info "charm_fuzz" ~doc)
    Term.(
      const main $ seeds_arg $ start_seed_arg $ smoke_arg $ plant_arg
      $ expect_arg $ max_repro_arg $ out_arg)

let () = exit (Cmd.eval cmd)
